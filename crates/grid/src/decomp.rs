//! Regular *domain → subdomain → block* decomposition (paper §IV-A).
//!
//! The paper assumes: the domain is a fixed 3D grid; each process owns one
//! subdomain; every subdomain is split into the same number of equally-sized
//! blocks. Blocks are the unit of scoring, reduction and redistribution.

use crate::{BlockId, Dims3, Extent3, GridError};

/// Shape of the process grid. Rank layout follows the same x-fastest
/// convention as point indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcGrid {
    pub px: usize,
    pub py: usize,
    pub pz: usize,
}

impl ProcGrid {
    pub const fn new(px: usize, py: usize, pz: usize) -> Self {
        Self { px, py, pz }
    }

    /// Number of ranks.
    pub const fn nranks(&self) -> usize {
        self.px * self.py * self.pz
    }

    /// Factor `nranks` into a near-square horizontal `px × py × 1` grid, the
    /// usual decomposition for atmospheric models (columns are not split
    /// vertically). Picks the divisor pair with the smallest aspect ratio.
    pub fn auto2d(nranks: usize) -> Self {
        assert!(nranks > 0, "nranks must be positive");
        let mut best = (1, nranks);
        let mut d = 1;
        while d * d <= nranks {
            if nranks.is_multiple_of(d) {
                best = (d, nranks / d);
            }
            d += 1;
        }
        Self {
            px: best.1,
            py: best.0,
            pz: 1,
        }
    }

    #[inline]
    pub fn rank_of(&self, c: (usize, usize, usize)) -> usize {
        debug_assert!(c.0 < self.px && c.1 < self.py && c.2 < self.pz);
        c.0 + self.px * (c.1 + self.py * c.2)
    }

    #[inline]
    pub fn coords_of(&self, rank: usize) -> (usize, usize, usize) {
        debug_assert!(rank < self.nranks());
        (
            rank % self.px,
            (rank / self.px) % self.py,
            rank / (self.px * self.py),
        )
    }
}

/// The full decomposition: domain dims, process grid and block size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainDecomp {
    domain: Dims3,
    procs: ProcGrid,
    block: Dims3,
    /// Points per subdomain.
    sub: Dims3,
    /// Blocks per subdomain (per axis).
    blocks_per_sub: Dims3,
    /// Blocks over the whole domain (per axis).
    global_blocks: Dims3,
}

impl DomainDecomp {
    /// Validates exact divisibility: domain by process grid, subdomain by
    /// block size — the constant-size, constant-count invariant of §IV-A.
    pub fn new(domain: Dims3, procs: ProcGrid, block: Dims3) -> Result<Self, GridError> {
        if domain.is_empty() || block.is_empty() || procs.nranks() == 0 {
            return Err(GridError::ZeroDim);
        }
        let sub = domain
            .exact_div(Dims3::new(procs.px, procs.py, procs.pz))
            .ok_or(GridError::IndivisibleProcs {
                domain,
                procs: (procs.px, procs.py, procs.pz),
            })?;
        let blocks_per_sub = sub.exact_div(block).ok_or(GridError::IndivisibleBlocks {
            subdomain: sub,
            block,
        })?;
        let global_blocks = Dims3::new(
            blocks_per_sub.nx * procs.px,
            blocks_per_sub.ny * procs.py,
            blocks_per_sub.nz * procs.pz,
        );
        Ok(Self {
            domain,
            procs,
            block,
            sub,
            blocks_per_sub,
            global_blocks,
        })
    }

    pub fn domain(&self) -> Dims3 {
        self.domain
    }

    pub fn procs(&self) -> ProcGrid {
        self.procs
    }

    pub fn block_dims(&self) -> Dims3 {
        self.block
    }

    pub fn subdomain_dims(&self) -> Dims3 {
        self.sub
    }

    pub fn nranks(&self) -> usize {
        self.procs.nranks()
    }

    /// Blocks per subdomain (total count) — constant across ranks.
    pub fn blocks_per_rank(&self) -> usize {
        self.blocks_per_sub.len()
    }

    /// Total number of blocks in the domain.
    pub fn n_blocks(&self) -> usize {
        self.global_blocks.len()
    }

    /// Shape of the global block grid.
    pub fn global_block_grid(&self) -> Dims3 {
        self.global_blocks
    }

    /// Point extent of `rank`'s subdomain within the domain.
    pub fn subdomain_extent(&self, rank: usize) -> Extent3 {
        let (cx, cy, cz) = self.procs.coords_of(rank);
        let lo = (cx * self.sub.nx, cy * self.sub.ny, cz * self.sub.nz);
        Extent3::new(
            lo,
            (lo.0 + self.sub.nx, lo.1 + self.sub.ny, lo.2 + self.sub.nz),
        )
    }

    /// Global block-grid coordinates of a block.
    #[inline]
    pub fn block_coords(&self, id: BlockId) -> (usize, usize, usize) {
        self.global_blocks.coords_of(id as usize)
    }

    /// Block id at global block-grid coordinates.
    #[inline]
    pub fn block_id_at(&self, c: (usize, usize, usize)) -> BlockId {
        self.global_blocks.idx(c.0, c.1, c.2) as BlockId
    }

    /// Point extent of a block within the domain.
    pub fn block_extent(&self, id: BlockId) -> Extent3 {
        let (bi, bj, bk) = self.block_coords(id);
        let lo = (bi * self.block.nx, bj * self.block.ny, bk * self.block.nz);
        Extent3::new(
            lo,
            (
                lo.0 + self.block.nx,
                lo.1 + self.block.ny,
                lo.2 + self.block.nz,
            ),
        )
    }

    /// The rank whose subdomain originally contains block `id` (the
    /// *producer*; redistribution may move it elsewhere).
    pub fn owner_of_block(&self, id: BlockId) -> usize {
        let (bi, bj, bk) = self.block_coords(id);
        self.procs.rank_of((
            bi / self.blocks_per_sub.nx,
            bj / self.blocks_per_sub.ny,
            bk / self.blocks_per_sub.nz,
        ))
    }

    /// Ids of the blocks originally produced by `rank`, in layout order.
    pub fn blocks_of_rank(&self, rank: usize) -> Vec<BlockId> {
        let (cx, cy, cz) = self.procs.coords_of(rank);
        let b = self.blocks_per_sub;
        let mut out = Vec::with_capacity(b.len());
        for k in 0..b.nz {
            for j in 0..b.ny {
                for i in 0..b.nx {
                    out.push(self.block_id_at((cx * b.nx + i, cy * b.ny + j, cz * b.nz + k)));
                }
            }
        }
        out
    }

    /// All block ids in the domain, in layout order.
    pub fn all_blocks(&self) -> impl Iterator<Item = BlockId> {
        0..self.n_blocks() as BlockId
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_scaled() -> DomainDecomp {
        // 1:5 scale of the paper: 440x440x76 domain, 11x11x19 blocks, 64 ranks.
        DomainDecomp::new(
            Dims3::new(440, 440, 76),
            ProcGrid::new(8, 8, 1),
            Dims3::new(11, 11, 19),
        )
        .unwrap()
    }

    #[test]
    fn auto2d_factors() {
        assert_eq!(ProcGrid::auto2d(64), ProcGrid::new(8, 8, 1));
        assert_eq!(ProcGrid::auto2d(400), ProcGrid::new(20, 20, 1));
        assert_eq!(ProcGrid::auto2d(12), ProcGrid::new(4, 3, 1));
        assert_eq!(ProcGrid::auto2d(1), ProcGrid::new(1, 1, 1));
        assert_eq!(ProcGrid::auto2d(7), ProcGrid::new(7, 1, 1));
    }

    #[test]
    fn rank_coords_roundtrip() {
        let p = ProcGrid::new(4, 3, 2);
        for r in 0..p.nranks() {
            assert_eq!(p.rank_of(p.coords_of(r)), r);
        }
    }

    #[test]
    fn counts_match_paper_scaling() {
        let d = paper_scaled();
        assert_eq!(d.nranks(), 64);
        assert_eq!(d.subdomain_dims(), Dims3::new(55, 55, 76));
        assert_eq!(d.blocks_per_rank(), 5 * 5 * 4);
        assert_eq!(d.n_blocks(), 6400);
        assert_eq!(d.global_block_grid(), Dims3::new(40, 40, 4));
    }

    #[test]
    fn divisibility_is_enforced() {
        let err = DomainDecomp::new(
            Dims3::new(100, 100, 10),
            ProcGrid::new(3, 1, 1),
            Dims3::new(10, 10, 10),
        );
        assert!(matches!(err, Err(GridError::IndivisibleProcs { .. })));
        let err = DomainDecomp::new(
            Dims3::new(100, 100, 10),
            ProcGrid::new(2, 2, 1),
            Dims3::new(7, 10, 10),
        );
        assert!(matches!(err, Err(GridError::IndivisibleBlocks { .. })));
    }

    #[test]
    fn block_ownership_partitions_domain() {
        let d = paper_scaled();
        let mut seen = vec![false; d.n_blocks()];
        for rank in 0..d.nranks() {
            let blocks = d.blocks_of_rank(rank);
            assert_eq!(blocks.len(), d.blocks_per_rank());
            for id in blocks {
                assert_eq!(d.owner_of_block(id), rank, "block {id}");
                assert!(!seen[id as usize], "block {id} owned twice");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn block_extents_tile_subdomain() {
        let d = paper_scaled();
        let rank = 9;
        let sub = d.subdomain_extent(rank);
        let mut covered = 0;
        for id in d.blocks_of_rank(rank) {
            let e = d.block_extent(id);
            assert!(
                sub.intersect(&e) == Some(e),
                "block {id} extent {e} outside subdomain {sub}"
            );
            covered += e.len();
        }
        assert_eq!(covered, sub.len());
    }

    #[test]
    fn block_extent_dims_constant() {
        let d = paper_scaled();
        for id in d.all_blocks().step_by(97) {
            assert_eq!(d.block_extent(id).dims(), Dims3::new(11, 11, 19));
        }
    }
}

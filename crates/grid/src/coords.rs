//! Physical coordinates of a rectilinear grid.
//!
//! CM1 runs on a *rectilinear* grid: axis spacing is uniform in the interior
//! and stretched towards the domain border so the storm has room to evolve
//! without interacting with the boundary (paper §II-A; the "longer blocks on
//! the borders of the domain" in Fig. 4 come from this stretching).

use crate::{Dims3, GridError};

/// Per-axis monotonically increasing physical coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct RectilinearCoords {
    pub x: Vec<f32>,
    pub y: Vec<f32>,
    pub z: Vec<f32>,
}

impl RectilinearCoords {
    /// Uniform spacing `d` starting at 0 on all axes.
    pub fn uniform(dims: Dims3, d: f32) -> Self {
        let axis = |n: usize| (0..n).map(|i| i as f32 * d).collect();
        Self {
            x: axis(dims.nx),
            y: axis(dims.ny),
            z: axis(dims.nz),
        }
    }

    /// CM1-style stretched axes: uniform interior spacing `d_inner`, with the
    /// outermost `stretch_n` cells on each horizontal side geometrically
    /// stretched by `ratio` per cell. The vertical axis stays uniform.
    pub fn stretched(dims: Dims3, d_inner: f32, stretch_n: usize, ratio: f32) -> Self {
        let stretched_axis = |n: usize| -> Vec<f32> {
            let sn = stretch_n.min(n / 2);
            // Spacing for each of the n-1 cells along the axis.
            let mut spacing = vec![d_inner; n.saturating_sub(1)];
            for s in 0..sn {
                // s = 0 is the outermost cell.
                let factor = ratio.powi((sn - s) as i32);
                if s < spacing.len() {
                    spacing[s] = d_inner * factor;
                }
                let from_end = spacing.len().saturating_sub(1 + s);
                if from_end < spacing.len() {
                    spacing[from_end] = d_inner * factor;
                }
            }
            let mut coords = Vec::with_capacity(n);
            let mut acc = 0.0;
            coords.push(0.0);
            for sp in spacing {
                acc += sp;
                coords.push(acc);
            }
            coords.truncate(n);
            coords
        };
        Self {
            x: stretched_axis(dims.nx),
            y: stretched_axis(dims.ny),
            z: (0..dims.nz).map(|i| i as f32 * d_inner).collect(),
        }
    }

    /// Build from explicit axis vectors, validating monotonicity.
    pub fn from_axes(x: Vec<f32>, y: Vec<f32>, z: Vec<f32>) -> Result<Self, GridError> {
        fn monotone(v: &[f32]) -> bool {
            v.windows(2).all(|w| w[1] > w[0])
        }
        if x.is_empty() || y.is_empty() || z.is_empty() {
            return Err(GridError::ZeroDim);
        }
        if !monotone(&x) || !monotone(&y) || !monotone(&z) {
            return Err(GridError::OutOfBounds);
        }
        Ok(Self { x, y, z })
    }

    pub fn dims(&self) -> Dims3 {
        Dims3::new(self.x.len(), self.y.len(), self.z.len())
    }

    /// Physical position of grid point `(i, j, k)`.
    #[inline]
    pub fn position(&self, i: usize, j: usize, k: usize) -> [f32; 3] {
        [self.x[i], self.y[j], self.z[k]]
    }

    /// Physical bounding box `(min, max)` of the whole grid.
    pub fn bounds(&self) -> ([f32; 3], [f32; 3]) {
        (
            [self.x[0], self.y[0], self.z[0]],
            [
                // apc-lint: allow(unwrap-in-lib): the constructor rejects empty axes
                *self.x.last().unwrap(),
                // apc-lint: allow(unwrap-in-lib): the constructor rejects empty axes
                *self.y.last().unwrap(),
                // apc-lint: allow(unwrap-in-lib): the constructor rejects empty axes
                *self.z.last().unwrap(),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_axes() {
        let c = RectilinearCoords::uniform(Dims3::new(4, 3, 2), 0.5);
        assert_eq!(c.x, vec![0.0, 0.5, 1.0, 1.5]);
        assert_eq!(c.dims(), Dims3::new(4, 3, 2));
        assert_eq!(c.position(1, 2, 1), [0.5, 1.0, 0.5]);
    }

    #[test]
    fn stretched_axes_are_monotone_and_wider_at_border() {
        let c = RectilinearCoords::stretched(Dims3::new(20, 20, 5), 1.0, 4, 1.2);
        for axis in [&c.x, &c.y] {
            assert!(axis.windows(2).all(|w| w[1] > w[0]));
            let first_cell = axis[1] - axis[0];
            let mid_cell = axis[10] - axis[9];
            let last_cell = axis[19] - axis[18];
            assert!(first_cell > mid_cell, "border cell should be stretched");
            assert!(last_cell > mid_cell, "border cell should be stretched");
            assert!((mid_cell - 1.0).abs() < 1e-6);
        }
        // z stays uniform.
        assert!(c.z.windows(2).all(|w| (w[1] - w[0] - 1.0).abs() < 1e-6));
    }

    #[test]
    fn from_axes_validates() {
        assert!(RectilinearCoords::from_axes(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0]).is_ok());
        assert!(RectilinearCoords::from_axes(vec![0.0, 0.0], vec![0.0, 1.0], vec![0.0]).is_err());
        assert!(RectilinearCoords::from_axes(vec![], vec![0.0], vec![0.0]).is_err());
    }

    #[test]
    fn bounds() {
        let c = RectilinearCoords::uniform(Dims3::new(3, 3, 3), 2.0);
        assert_eq!(c.bounds(), ([0.0, 0.0, 0.0], [4.0, 4.0, 4.0]));
    }
}

//! Blocks: the unit of scoring, reduction and redistribution.

use crate::interp::{corners_of, reconstruct_from_corners, resample_trilinear, sample_indices};
use crate::{Dims3, Extent3, Field3, GridError};

/// Global identifier of a block (linear index in the global block grid).
pub type BlockId = u32;

/// Payload of a block: the full sample array, the 8 corner values kept by
/// the paper's reduction step (55×55×38 → 2×2×2, §IV-C), or a general
/// k×k×k sample lattice (the "more elaborate downsampling strategies" the
/// paper leaves as future work).
#[derive(Debug, Clone, PartialEq)]
pub enum BlockData {
    /// All samples, x-fastest layout of the block's extent.
    Full(Vec<f32>),
    /// Only the 8 corners, in [`crate::interp::trilinear`] corner order.
    Reduced([f32; 8]),
    /// A coarse sample lattice of shape `dims` (each axis ≥ 2 points, first
    /// and last on the block boundary so neighbors stay connected).
    Sampled { dims: Dims3, values: Vec<f32> },
}

impl BlockData {
    /// Payload size in bytes, as counted by the communication model.
    pub fn nbytes(&self) -> usize {
        match self {
            BlockData::Full(v) => v.len() * std::mem::size_of::<f32>(),
            BlockData::Reduced(_) => 8 * std::mem::size_of::<f32>(),
            BlockData::Sampled { values, .. } => values.len() * std::mem::size_of::<f32>(),
        }
    }

    /// Whether the payload is smaller than the full sample array.
    pub fn is_reduced(&self) -> bool {
        !matches!(self, BlockData::Full(_))
    }
}

/// A block of data: its id, its point extent within the global domain, and
/// its (possibly reduced) payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub id: BlockId,
    pub extent: Extent3,
    pub data: BlockData,
}

impl Block {
    /// Extract a full block from a domain-global field.
    pub fn from_field(id: BlockId, extent: Extent3, field: &Field3) -> Result<Self, GridError> {
        let data = field.extract(extent)?;
        Ok(Self {
            id,
            extent,
            data: BlockData::Full(data),
        })
    }

    /// Shape of the block's extent (the *logical* shape; a reduced block
    /// still reports its original extent so neighbors stay connected).
    pub fn dims(&self) -> Dims3 {
        self.extent.dims()
    }

    pub fn is_reduced(&self) -> bool {
        self.data.is_reduced()
    }

    pub fn nbytes(&self) -> usize {
        self.data.nbytes()
    }

    /// Reduce in place to the 8 corner values. Keeping two points per axis
    /// retains the block's extents and continuity with neighboring blocks
    /// (paper §IV-C). Idempotent.
    pub fn reduce(&mut self) {
        if let BlockData::Full(data) = &self.data {
            let corners = corners_of(data, self.dims());
            self.data = BlockData::Reduced(corners);
        }
    }

    /// A reduced copy of this block.
    pub fn reduced(&self) -> Block {
        let mut b = self.clone();
        b.reduce();
        b
    }

    /// Downsample in place to a `keep × keep × keep` lattice (clamped to
    /// the block's own dims). `keep == 2` is exactly [`Block::reduce`];
    /// larger lattices trade bytes for fidelity — the reduction-size
    /// ablation of DESIGN.md §4. No-op on already-reduced data.
    pub fn downsample(&mut self, keep: usize) {
        assert!(
            keep >= 2,
            "keep at least two points per axis for continuity"
        );
        if keep == 2 {
            self.reduce();
            return;
        }
        if let BlockData::Full(data) = &self.data {
            let d = self.dims();
            let (ix, iy, iz) = (
                sample_indices(d.nx, keep),
                sample_indices(d.ny, keep),
                sample_indices(d.nz, keep),
            );
            let cd = Dims3::new(ix.len(), iy.len(), iz.len());
            let mut values = Vec::with_capacity(cd.len());
            for &k in &iz {
                for &j in &iy {
                    for &i in &ix {
                        values.push(data[d.idx(i, j, k)]);
                    }
                }
            }
            self.data = BlockData::Sampled { dims: cd, values };
        }
    }

    /// A downsampled copy of this block.
    pub fn downsampled(&self, keep: usize) -> Block {
        let mut b = self.clone();
        b.downsample(keep);
        b
    }

    /// The full sample array: the original data for a full block, or the
    /// trilinear reconstruction for a reduced/downsampled one (what a
    /// visualization algorithm rebuilds, paper §IV-C).
    pub fn samples(&self) -> std::borrow::Cow<'_, [f32]> {
        match &self.data {
            BlockData::Full(v) => std::borrow::Cow::Borrowed(v),
            BlockData::Reduced(c) => {
                std::borrow::Cow::Owned(reconstruct_from_corners(c, self.dims()))
            }
            BlockData::Sampled { dims, values } => {
                std::borrow::Cow::Owned(resample_trilinear(values, *dims, self.dims()))
            }
        }
    }

    /// The corner values of the block (extracted for full blocks).
    pub fn corners(&self) -> [f32; 8] {
        match &self.data {
            BlockData::Full(v) => corners_of(v, self.dims()),
            BlockData::Reduced(c) => *c,
            BlockData::Sampled { dims, values } => corners_of(values, *dims),
        }
    }

    /// Serialize to a flat `f32` buffer for transport:
    /// `[id, kind, lo.0, lo.1, lo.2, hi.0, hi.1, hi.2, (lattice dims)?,
    /// payload...]` where `kind` is 0 = full, 1 = reduced, 2 = sampled.
    /// Indices fit f32 exactly for any realistic grid (< 2^24 points/axis).
    pub fn encode(&self) -> Vec<f32> {
        let (kind, payload): (f32, &[f32]) = match &self.data {
            BlockData::Full(v) => (0.0, v),
            BlockData::Reduced(c) => (1.0, c),
            BlockData::Sampled { values, .. } => (2.0, values),
        };
        let mut out = Vec::with_capacity(11 + payload.len());
        out.push(self.id as f32);
        out.push(kind);
        out.push(self.extent.lo.0 as f32);
        out.push(self.extent.lo.1 as f32);
        out.push(self.extent.lo.2 as f32);
        out.push(self.extent.hi.0 as f32);
        out.push(self.extent.hi.1 as f32);
        out.push(self.extent.hi.2 as f32);
        if let BlockData::Sampled { dims, .. } = &self.data {
            out.push(dims.nx as f32);
            out.push(dims.ny as f32);
            out.push(dims.nz as f32);
        }
        out.extend_from_slice(payload);
        out
    }

    /// Inverse of [`Block::encode`].
    pub fn decode(buf: &[f32]) -> Result<Self, GridError> {
        if buf.len() < 8 {
            return Err(GridError::LengthMismatch {
                expected: 8,
                got: buf.len(),
            });
        }
        let id = buf[0] as BlockId;
        let kind = buf[1];
        let extent = Extent3::new(
            (buf[2] as usize, buf[3] as usize, buf[4] as usize),
            (buf[5] as usize, buf[6] as usize, buf[7] as usize),
        );
        let payload = &buf[8..];
        let data = if kind == 1.0 {
            if payload.len() != 8 {
                return Err(GridError::LengthMismatch {
                    expected: 8,
                    got: payload.len(),
                });
            }
            let mut c = [0.0f32; 8];
            c.copy_from_slice(payload);
            BlockData::Reduced(c)
        } else if kind == 2.0 {
            if payload.len() < 3 {
                return Err(GridError::LengthMismatch {
                    expected: 3,
                    got: payload.len(),
                });
            }
            let dims = Dims3::new(
                payload[0] as usize,
                payload[1] as usize,
                payload[2] as usize,
            );
            let values = &payload[3..];
            if values.len() != dims.len() {
                return Err(GridError::LengthMismatch {
                    expected: dims.len(),
                    got: values.len(),
                });
            }
            BlockData::Sampled {
                dims,
                values: values.to_vec(),
            }
        } else {
            if payload.len() != extent.len() {
                return Err(GridError::LengthMismatch {
                    expected: extent.len(),
                    got: payload.len(),
                });
            }
            BlockData::Full(payload.to_vec())
        };
        Ok(Self { id, extent, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block {
        let dims = Dims3::new(5, 4, 3);
        let field = Field3::from_fn(dims, |i, j, k| (i * 100 + j * 10 + k) as f32);
        Block::from_field(7, Extent3::new((0, 0, 0), (5, 4, 3)), &field).unwrap()
    }

    #[test]
    fn reduce_keeps_corners_and_extent() {
        let b = sample_block();
        let original_corners = b.corners();
        let r = b.reduced();
        assert!(r.is_reduced());
        assert_eq!(r.extent, b.extent);
        assert_eq!(r.dims(), b.dims());
        assert_eq!(r.corners(), original_corners);
        assert_eq!(r.nbytes(), 32);
        assert_eq!(b.nbytes(), 5 * 4 * 3 * 4);
    }

    #[test]
    fn reduce_is_idempotent() {
        let mut b = sample_block();
        b.reduce();
        let once = b.clone();
        b.reduce();
        assert_eq!(b, once);
    }

    #[test]
    fn reduced_samples_match_at_corners() {
        let b = sample_block();
        let r = b.reduced();
        let full = b.samples();
        let rec = r.samples();
        let d = b.dims();
        for dz in 0..2usize {
            for dy in 0..2usize {
                for dx in 0..2usize {
                    let idx = d.idx(dx * (d.nx - 1), dy * (d.ny - 1), dz * (d.nz - 1));
                    assert!((full[idx] - rec[idx]).abs() < 1e-3);
                }
            }
        }
    }

    #[test]
    fn encode_decode_full_roundtrip() {
        let b = sample_block();
        let buf = b.encode();
        let d = Block::decode(&buf).unwrap();
        assert_eq!(d, b);
    }

    #[test]
    fn encode_decode_reduced_roundtrip() {
        let b = sample_block().reduced();
        let buf = b.encode();
        assert_eq!(buf.len(), 16);
        let d = Block::decode(&buf).unwrap();
        assert_eq!(d, b);
    }

    #[test]
    fn downsample_keeps_extent_and_shrinks_payload() {
        let b = sample_block(); // 5x4x3
        let d3 = b.downsampled(3);
        assert!(d3.is_reduced());
        assert_eq!(d3.extent, b.extent);
        match &d3.data {
            BlockData::Sampled { dims, values } => {
                assert_eq!(*dims, Dims3::new(3, 3, 3));
                assert_eq!(values.len(), 27);
            }
            other => panic!("expected Sampled, got {other:?}"),
        }
        assert!(d3.nbytes() < b.nbytes());
        assert!(d3.nbytes() > b.reduced().nbytes());
    }

    #[test]
    fn downsample_two_is_reduce() {
        let b = sample_block();
        assert_eq!(b.downsampled(2), b.reduced());
    }

    #[test]
    fn downsample_keeps_corners() {
        let b = sample_block();
        for keep in [2usize, 3, 4] {
            assert_eq!(b.downsampled(keep).corners(), b.corners(), "keep = {keep}");
        }
    }

    #[test]
    fn finer_lattice_reconstructs_better() {
        // A wavy block: 4^3 lattice must beat corners on MSE.
        let dims = Dims3::new(9, 9, 9);
        let field = Field3::from_fn(dims, |i, j, k| {
            ((i as f32 * 0.9).sin() + (j as f32 * 0.7).cos()) * 10.0 + k as f32
        });
        let b = Block::from_field(0, Extent3::new((0, 0, 0), (9, 9, 9)), &field).unwrap();
        let mse = |keep: usize| -> f64 {
            let rec = b.downsampled(keep).samples().to_vec();
            b.samples()
                .iter()
                .zip(&rec)
                .map(|(a, r)| ((a - r) as f64).powi(2))
                .sum::<f64>()
                / rec.len() as f64
        };
        assert!(mse(4) < mse(2), "4^3: {} vs corners: {}", mse(4), mse(2));
    }

    #[test]
    fn encode_decode_sampled_roundtrip() {
        let b = sample_block().downsampled(3);
        let buf = b.encode();
        assert_eq!(Block::decode(&buf).unwrap(), b);
    }

    #[test]
    fn downsample_is_noop_on_reduced() {
        let mut b = sample_block().reduced();
        let before = b.clone();
        b.downsample(4);
        assert_eq!(b, before);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn downsample_rejects_singleton() {
        let mut b = sample_block();
        b.downsample(1);
    }

    #[test]
    fn decode_rejects_bad_lengths() {
        let b = sample_block();
        let mut buf = b.encode();
        buf.pop();
        assert!(Block::decode(&buf).is_err());
        assert!(Block::decode(&buf[..4]).is_err());
    }
}

//! Index-space shapes ([`Dims3`]) and axis-aligned boxes ([`Extent3`]).

use std::fmt;

/// The shape of a 3D array of grid points.
///
/// Layout convention throughout the workspace: `x` is the fastest-varying
/// axis, i.e. linear index = `i + nx*(j + ny*k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dims3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Dims3 {
    pub const fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self { nx, ny, nz }
    }

    /// Total number of points.
    pub const fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of point `(i, j, k)`.
    #[inline(always)]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    /// Inverse of [`Dims3::idx`].
    #[inline]
    pub fn coords_of(&self, idx: usize) -> (usize, usize, usize) {
        debug_assert!(idx < self.len());
        let i = idx % self.nx;
        let j = (idx / self.nx) % self.ny;
        let k = idx / (self.nx * self.ny);
        (i, j, k)
    }

    /// Component-wise division; `None` unless every axis divides exactly.
    pub fn exact_div(&self, other: Dims3) -> Option<Dims3> {
        if other.nx == 0 || other.ny == 0 || other.nz == 0 {
            return None;
        }
        if self.nx.is_multiple_of(other.nx)
            && self.ny.is_multiple_of(other.ny)
            && self.nz.is_multiple_of(other.nz)
        {
            Some(Dims3::new(
                self.nx / other.nx,
                self.ny / other.ny,
                self.nz / other.nz,
            ))
        } else {
            None
        }
    }

    /// Iterate over all `(i, j, k)` points in layout order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let d = *self;
        (0..d.len()).map(move |idx| d.coords_of(idx))
    }
}

impl fmt::Display for Dims3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.nx, self.ny, self.nz)
    }
}

/// A half-open box `[lo, hi)` of grid points inside a larger array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Extent3 {
    pub lo: (usize, usize, usize),
    pub hi: (usize, usize, usize),
}

impl Extent3 {
    pub fn new(lo: (usize, usize, usize), hi: (usize, usize, usize)) -> Self {
        debug_assert!(lo.0 <= hi.0 && lo.1 <= hi.1 && lo.2 <= hi.2);
        Self { lo, hi }
    }

    /// The shape of the box.
    pub fn dims(&self) -> Dims3 {
        Dims3::new(
            self.hi.0 - self.lo.0,
            self.hi.1 - self.lo.1,
            self.hi.2 - self.lo.2,
        )
    }

    pub fn len(&self) -> usize {
        self.dims().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the point lies inside the box.
    pub fn contains(&self, p: (usize, usize, usize)) -> bool {
        p.0 >= self.lo.0
            && p.0 < self.hi.0
            && p.1 >= self.lo.1
            && p.1 < self.hi.1
            && p.2 >= self.lo.2
            && p.2 < self.hi.2
    }

    /// Whether `self` fits entirely inside an array of shape `dims`.
    pub fn fits_in(&self, dims: Dims3) -> bool {
        self.hi.0 <= dims.nx && self.hi.1 <= dims.ny && self.hi.2 <= dims.nz
    }

    /// Intersection of two extents, `None` if disjoint.
    pub fn intersect(&self, other: &Extent3) -> Option<Extent3> {
        let lo = (
            self.lo.0.max(other.lo.0),
            self.lo.1.max(other.lo.1),
            self.lo.2.max(other.lo.2),
        );
        let hi = (
            self.hi.0.min(other.hi.0),
            self.hi.1.min(other.hi.1),
            self.hi.2.min(other.hi.2),
        );
        if lo.0 < hi.0 && lo.1 < hi.1 && lo.2 < hi.2 {
            Some(Extent3::new(lo, hi))
        } else {
            None
        }
    }
}

impl fmt::Display for Extent3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{},{},{})..[{},{},{})",
            self.lo.0, self.lo.1, self.lo.2, self.hi.0, self.hi.1, self.hi.2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_roundtrip() {
        let d = Dims3::new(4, 5, 6);
        for k in 0..6 {
            for j in 0..5 {
                for i in 0..4 {
                    let idx = d.idx(i, j, k);
                    assert_eq!(d.coords_of(idx), (i, j, k));
                }
            }
        }
    }

    #[test]
    fn idx_is_x_fastest() {
        let d = Dims3::new(4, 5, 6);
        assert_eq!(d.idx(1, 0, 0), 1);
        assert_eq!(d.idx(0, 1, 0), 4);
        assert_eq!(d.idx(0, 0, 1), 20);
    }

    #[test]
    fn exact_div() {
        let d = Dims3::new(40, 40, 10);
        assert_eq!(d.exact_div(Dims3::new(8, 8, 1)), Some(Dims3::new(5, 5, 10)));
        assert_eq!(d.exact_div(Dims3::new(3, 8, 1)), None);
        assert_eq!(d.exact_div(Dims3::new(0, 8, 1)), None);
    }

    #[test]
    fn extent_dims_and_contains() {
        let e = Extent3::new((1, 2, 3), (4, 6, 9));
        assert_eq!(e.dims(), Dims3::new(3, 4, 6));
        assert_eq!(e.len(), 72);
        assert!(e.contains((1, 2, 3)));
        assert!(e.contains((3, 5, 8)));
        assert!(!e.contains((4, 2, 3)));
        assert!(!e.contains((0, 2, 3)));
    }

    #[test]
    fn extent_intersect() {
        let a = Extent3::new((0, 0, 0), (4, 4, 4));
        let b = Extent3::new((2, 2, 2), (6, 6, 6));
        assert_eq!(a.intersect(&b), Some(Extent3::new((2, 2, 2), (4, 4, 4))));
        let c = Extent3::new((4, 4, 4), (5, 5, 5));
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn dims_iter_order() {
        let d = Dims3::new(2, 2, 1);
        let pts: Vec<_> = d.iter().collect();
        assert_eq!(pts, vec![(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0)]);
    }
}

//! Per-chunk compression, layered on the [`apc_compress::FloatCodec`]s.
//!
//! Every stored chunk is `[1-byte codec tag][codec payload]`, so a reader
//! can decode a chunk regardless of what the dataset-level default codec
//! is — the tag is the source of truth per chunk, which is what makes
//! mixed-codec stores (or a future per-chunk adaptive writer) possible.
//! `zfpx` chunks additionally carry their encode tolerance in the payload
//! header (the zfp-style decoder must know the bit-plane cutoff the
//! encoder used), so they too decode correctly under any dataset codec.

use apc_compress::{FloatCodec, Fpz, Lz77, Zfpx};
use apc_grid::Dims3;

use crate::StoreError;

const TAG_RAW: u8 = 0;
const TAG_FPZ: u8 = 1;
const TAG_LZ: u8 = 2;
const TAG_ZFPX: u8 = 3;

/// Which codec compresses chunks.
///
/// `Raw`, `Fpz` and `Lz` are lossless: a dataset stored with them replays
/// **byte-identically** through the pipeline (the `store_roundtrip`
/// integration test pins this). `Zfpx` trades exactness for size at a
/// fixed absolute `tolerance` — useful for archival copies, but reports
/// produced from a `Zfpx` store are only *approximately* those of the
/// in-memory path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CodecKind {
    /// Little-endian `f32`s, no compression.
    Raw,
    /// The lossless fpzip-like predictive codec (the default).
    #[default]
    Fpz,
    /// Lossless LZ77 over byte-plane-transposed floats.
    Lz,
    /// The lossy zfp-like transform codec at an absolute tolerance.
    Zfpx { tolerance: f32 },
}

impl CodecKind {
    /// Name used in the metadata document.
    pub fn name(&self) -> &'static str {
        match self {
            CodecKind::Raw => "raw",
            CodecKind::Fpz => "fpz",
            CodecKind::Lz => "lz",
            CodecKind::Zfpx { .. } => "zfpx",
        }
    }

    /// Inverse of [`CodecKind::name`]; `tolerance` only applies to `zfpx`.
    pub fn from_name(name: &str, tolerance: Option<f32>) -> Result<Self, StoreError> {
        match name {
            "raw" => Ok(CodecKind::Raw),
            "fpz" => Ok(CodecKind::Fpz),
            "lz" => Ok(CodecKind::Lz),
            "zfpx" => Ok(CodecKind::Zfpx {
                tolerance: tolerance.unwrap_or_else(|| Zfpx::default().tolerance),
            }),
            other => Err(StoreError::BadMeta(format!("unknown codec {other:?}"))),
        }
    }

    /// Whether chunks decode bit-exactly.
    pub fn is_lossless(&self) -> bool {
        !matches!(self, CodecKind::Zfpx { .. })
    }

    /// Compress one chunk (`samples` shaped `dims`, x-fastest) into a
    /// tagged stream.
    pub fn encode_chunk(&self, samples: &[f32], dims: Dims3) -> Vec<u8> {
        let shape = (dims.nx, dims.ny, dims.nz);
        match self {
            CodecKind::Raw => {
                let mut out = Vec::with_capacity(1 + samples.len() * 4);
                out.push(TAG_RAW);
                for v in samples {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out
            }
            CodecKind::Fpz => tagged(TAG_FPZ, Fpz.encode(samples, shape)),
            CodecKind::Lz => tagged(TAG_LZ, Lz77.encode(samples, shape)),
            CodecKind::Zfpx { tolerance } => {
                // The decoder needs the encoder's tolerance to know the
                // bit-plane cutoff, so the chunk carries it.
                let stream = Zfpx {
                    tolerance: *tolerance,
                }
                .encode(samples, shape);
                let mut out = Vec::with_capacity(5 + stream.len());
                out.push(TAG_ZFPX);
                out.extend_from_slice(&tolerance.to_le_bytes());
                out.extend_from_slice(&stream);
                out
            }
        }
    }

    /// Decompress a tagged chunk stream back to `dims.len()` samples. The
    /// chunk's own tag (plus, for `zfpx`, the tolerance stored in the
    /// chunk header) fully determines the decoder — `self` carries no
    /// decode state, so chunks from mixed-codec stores always decode
    /// correctly.
    pub fn decode_chunk(&self, stream: &[u8], dims: Dims3) -> Result<Vec<f32>, StoreError> {
        let shape = (dims.nx, dims.ny, dims.nz);
        let Some((&tag, payload)) = stream.split_first() else {
            return Err(StoreError::Codec(apc_compress::CodecError::Corrupt(
                "empty chunk stream",
            )));
        };
        let samples = match tag {
            TAG_RAW => {
                if payload.len() != dims.len() * 4 {
                    return Err(StoreError::ChunkShape {
                        expected: dims.len(),
                        got: payload.len() / 4,
                    });
                }
                payload
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect()
            }
            TAG_FPZ => Fpz.decode(payload, shape)?,
            TAG_LZ => Lz77.decode(payload, shape)?,
            TAG_ZFPX => {
                let Some((tol_bytes, body)) = payload.split_first_chunk::<4>() else {
                    return Err(StoreError::Codec(apc_compress::CodecError::Corrupt(
                        "zfpx chunk too short for its tolerance header",
                    )));
                };
                let tolerance = f32::from_le_bytes(*tol_bytes);
                if !tolerance.is_finite() || tolerance < 0.0 {
                    return Err(StoreError::Codec(apc_compress::CodecError::Corrupt(
                        "zfpx chunk has a non-finite or negative tolerance",
                    )));
                }
                Zfpx { tolerance }.decode(body, shape)?
            }
            other => {
                return Err(StoreError::BadMeta(format!(
                    "unknown chunk codec tag {other}"
                )))
            }
        };
        if samples.len() != dims.len() {
            return Err(StoreError::ChunkShape {
                expected: dims.len(),
                got: samples.len(),
            });
        }
        Ok(samples)
    }

    /// The `zfpx` tolerance, if any (persisted in the metadata).
    pub fn tolerance(&self) -> Option<f32> {
        match self {
            CodecKind::Zfpx { tolerance } => Some(*tolerance),
            _ => None,
        }
    }
}

fn tagged(tag: u8, mut payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + payload.len());
    out.push(tag);
    out.append(&mut payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.37).sin() * 40.0 + 10.0)
            .collect()
    }

    #[test]
    fn lossless_kinds_roundtrip_bit_exact() {
        let dims = Dims3::new(7, 5, 3);
        let data = wavy(dims.len());
        for kind in [CodecKind::Raw, CodecKind::Fpz, CodecKind::Lz] {
            let enc = kind.encode_chunk(&data, dims);
            let dec = kind.decode_chunk(&enc, dims).unwrap();
            assert_eq!(dec.len(), data.len());
            for (a, b) in data.iter().zip(&dec) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}", kind.name());
            }
        }
    }

    #[test]
    fn zfpx_kind_roundtrips_within_tolerance() {
        let dims = Dims3::new(8, 8, 4);
        let data = wavy(dims.len());
        let kind = CodecKind::Zfpx { tolerance: 0.01 };
        let dec = kind
            .decode_chunk(&kind.encode_chunk(&data, dims), dims)
            .unwrap();
        for (a, b) in data.iter().zip(&dec) {
            assert!((a - b).abs() < 0.1, "{a} vs {b}");
        }
    }

    #[test]
    fn decoder_follows_chunk_tag_not_dataset_codec() {
        // A raw-tagged chunk decodes even when the dataset default is fpz.
        let dims = Dims3::new(4, 3, 2);
        let data = wavy(dims.len());
        let enc = CodecKind::Raw.encode_chunk(&data, dims);
        let dec = CodecKind::Fpz.decode_chunk(&enc, dims).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn zfpx_chunk_decodes_under_any_dataset_codec() {
        // The chunk carries its own tolerance: a zfpx chunk written at a
        // non-default tolerance must decode correctly even when the
        // dataset-level codec is something else entirely.
        let dims = Dims3::new(8, 8, 4);
        let data = wavy(dims.len());
        let tol = 0.5f32; // far from the 1e-2 default
        let enc = CodecKind::Zfpx { tolerance: tol }.encode_chunk(&data, dims);
        let dec = CodecKind::Raw.decode_chunk(&enc, dims).unwrap();
        for (a, b) in data.iter().zip(&dec) {
            assert!((a - b).abs() <= 8.0 * tol, "{a} vs {b}");
        }
        // A truncated tolerance header is corrupt, not a panic.
        assert!(matches!(
            CodecKind::Raw.decode_chunk(&enc[..3], dims),
            Err(StoreError::Codec(_))
        ));
    }

    #[test]
    fn names_roundtrip() {
        for kind in [
            CodecKind::Raw,
            CodecKind::Fpz,
            CodecKind::Lz,
            CodecKind::Zfpx { tolerance: 0.5 },
        ] {
            let back = CodecKind::from_name(kind.name(), kind.tolerance()).unwrap();
            assert_eq!(back, kind);
        }
        assert!(matches!(
            CodecKind::from_name("gzip", None),
            Err(StoreError::BadMeta(_))
        ));
    }

    #[test]
    fn bad_streams_are_errors_not_panics() {
        let dims = Dims3::new(4, 4, 4);
        assert!(CodecKind::Fpz.decode_chunk(&[], dims).is_err());
        assert!(CodecKind::Fpz.decode_chunk(&[99, 1, 2, 3], dims).is_err());
        // Raw payload with the wrong byte count.
        assert!(matches!(
            CodecKind::Raw.decode_chunk(&[TAG_RAW, 0, 0, 0], dims),
            Err(StoreError::ChunkShape { .. })
        ));
        // Truncated fpz payload.
        let data = wavy(dims.len());
        let enc = CodecKind::Fpz.encode_chunk(&data, dims);
        assert!(CodecKind::Fpz
            .decode_chunk(&enc[..enc.len() / 2], dims)
            .is_err());
    }

    #[test]
    fn compression_actually_shrinks_smooth_chunks() {
        // A constant-gradient ramp: the Lorenzo predictor nails it.
        let dims = Dims3::new(11, 11, 19);
        let data: Vec<f32> = (0..dims.len()).map(|i| i as f32 * 0.5).collect();
        let raw = CodecKind::Raw.encode_chunk(&data, dims).len();
        let fpz = CodecKind::Fpz.encode_chunk(&data, dims).len();
        let lz = CodecKind::Lz.encode_chunk(&data, dims).len();
        assert!(fpz < raw / 2, "fpz {fpz} vs raw {raw}");
        assert!(lz < raw, "lz {lz} vs raw {raw}");
    }
}

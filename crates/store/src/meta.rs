//! The dataset metadata document and its JSON encoding.
//!
//! Stored at key `meta.json` as a flat, human-readable JSON object (the
//! zarr convention of keeping array geometry out-of-band in plain text).
//! The parser below covers exactly the subset the document uses — string
//! values, integers, floats, and integer arrays — with no external JSON
//! dependency.

use apc_grid::{Dims3, DomainDecomp, ProcGrid};

use crate::codec::CodecKind;
use crate::json::{parse_object, Value};
use crate::StoreError;

/// Key under which the metadata document is stored.
pub const META_KEY: &str = "meta.json";

const FORMAT: &str = "apc-store";
const VERSION: i64 = 1;

/// Everything needed to interpret a stored dataset: the full domain
/// geometry (domain, chunk and process grids — chunks coincide with the
/// `apc-grid` block decomposition), the chunk codec, the stored iteration
/// indices, and the storm seed for provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetMeta {
    pub domain: Dims3,
    /// Chunk dims ≡ block dims of the decomposition.
    pub chunk: Dims3,
    pub procs: ProcGrid,
    pub codec: CodecKind,
    /// Storm seed the dataset was generated from (provenance; also lets a
    /// reader rebuild the deterministic coordinate axes).
    pub seed: u64,
    /// Simulation iterations stored, strictly increasing.
    pub iterations: Vec<usize>,
    /// Chunk layout: `None` means one store key per chunk; `Some(n)`
    /// means chunks are packed `n` per shard container and readers must
    /// go through a [`crate::ShardedStore`] wrap of the backend.
    pub shard_chunks: Option<usize>,
}

impl DatasetMeta {
    /// Validate the geometry as a decomposition (exact divisibility).
    pub fn decomp(&self) -> Result<DomainDecomp, StoreError> {
        Ok(DomainDecomp::new(self.domain, self.procs, self.chunk)?)
    }

    /// Serialize to the JSON document stored at [`META_KEY`].
    pub fn to_json(&self) -> String {
        let dims = |d: Dims3| format!("[{}, {}, {}]", d.nx, d.ny, d.nz);
        let iters: Vec<String> = self.iterations.iter().map(|i| i.to_string()).collect();
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"format\": \"{FORMAT}\",\n"));
        s.push_str(&format!("  \"version\": {VERSION},\n"));
        s.push_str(&format!("  \"domain\": {},\n", dims(self.domain)));
        s.push_str(&format!("  \"chunk\": {},\n", dims(self.chunk)));
        s.push_str(&format!(
            "  \"procs\": [{}, {}, {}],\n",
            self.procs.px, self.procs.py, self.procs.pz
        ));
        s.push_str(&format!("  \"codec\": \"{}\",\n", self.codec.name()));
        if let Some(tol) = self.codec.tolerance() {
            s.push_str(&format!("  \"tolerance\": {tol},\n"));
        }
        if let Some(n) = self.shard_chunks {
            s.push_str(&format!("  \"shard_chunks\": {n},\n"));
        }
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"iterations\": [{}]\n", iters.join(", ")));
        s.push('}');
        s
    }

    /// Parse a document produced by [`DatasetMeta::to_json`] (or written by
    /// hand in the same subset of JSON).
    pub fn from_json(text: &str) -> Result<Self, StoreError> {
        let fields = parse_object(text).map_err(StoreError::BadMeta)?;
        let get = |key: &str| -> Result<&Value, StoreError> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| StoreError::BadMeta(format!("missing field {key:?}")))
        };
        match get("format")? {
            Value::Str(s) if s == FORMAT => {}
            other => return Err(StoreError::BadMeta(format!("bad format field {other:?}"))),
        }
        match get("version")? {
            Value::Int(v) if *v == VERSION as i128 => {}
            other => {
                return Err(StoreError::BadMeta(format!(
                    "unsupported version {other:?}"
                )))
            }
        }
        let dims = |key: &str| -> Result<Dims3, StoreError> {
            match get(key)? {
                Value::Arr(v) if v.len() == 3 && v.iter().all(|x| *x >= 0) => {
                    Ok(Dims3::new(v[0] as usize, v[1] as usize, v[2] as usize))
                }
                other => Err(StoreError::BadMeta(format!("bad {key} field {other:?}"))),
            }
        };
        let domain = dims("domain")?;
        let chunk = dims("chunk")?;
        let p = dims("procs")?;
        let codec_name = match get("codec")? {
            Value::Str(s) => s.clone(),
            other => return Err(StoreError::BadMeta(format!("bad codec field {other:?}"))),
        };
        let tolerance = match fields.iter().find(|(k, _)| k == "tolerance") {
            Some((_, Value::Float(f))) => Some(*f as f32),
            Some((_, Value::Int(i))) => Some(*i as f32),
            Some((_, other)) => {
                return Err(StoreError::BadMeta(format!(
                    "bad tolerance field {other:?}"
                )))
            }
            None => None,
        };
        let codec = CodecKind::from_name(&codec_name, tolerance)?;
        let seed = match get("seed")? {
            Value::Int(v) if (0..=u64::MAX as i128).contains(v) => *v as u64,
            other => return Err(StoreError::BadMeta(format!("bad seed field {other:?}"))),
        };
        let iterations = match get("iterations")? {
            Value::Arr(v) if v.iter().all(|x| *x >= 0) => {
                v.iter().map(|&x| x as usize).collect::<Vec<usize>>()
            }
            other => {
                return Err(StoreError::BadMeta(format!(
                    "bad iterations field {other:?}"
                )))
            }
        };
        if !iterations.windows(2).all(|w| w[1] > w[0]) {
            return Err(StoreError::BadMeta(
                "iterations must be strictly increasing".to_owned(),
            ));
        }
        let shard_chunks = match fields.iter().find(|(k, _)| k == "shard_chunks") {
            Some((_, Value::Int(n))) if *n >= 1 => Some(*n as usize),
            Some((_, other)) => {
                return Err(StoreError::BadMeta(format!(
                    "bad shard_chunks field {other:?}"
                )))
            }
            None => None,
        };
        Ok(Self {
            domain,
            chunk,
            procs: ProcGrid::new(p.nx, p.ny, p.nz),
            codec,
            seed,
            iterations,
            shard_chunks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DatasetMeta {
        DatasetMeta {
            domain: Dims3::new(80, 80, 16),
            chunk: Dims3::new(10, 10, 8),
            procs: ProcGrid::new(2, 2, 1),
            codec: CodecKind::Fpz,
            seed: 42,
            iterations: vec![100, 250, 400],
            shard_chunks: None,
        }
    }

    #[test]
    fn json_roundtrip_with_shard_layout() {
        let meta = DatasetMeta {
            shard_chunks: Some(64),
            ..sample()
        };
        let back = DatasetMeta::from_json(&meta.to_json()).unwrap();
        assert_eq!(back, meta);
        assert_eq!(back.shard_chunks, Some(64));
        // Absent field stays None (documents from older writers).
        assert_eq!(
            DatasetMeta::from_json(&sample().to_json())
                .unwrap()
                .shard_chunks,
            None
        );
        // A nonsense layout is rejected, not clamped.
        let bad = sample()
            .to_json()
            .replace("\"seed\"", "\"shard_chunks\": 0,\n  \"seed\"");
        assert!(matches!(
            DatasetMeta::from_json(&bad),
            Err(StoreError::BadMeta(_))
        ));
    }

    #[test]
    fn json_roundtrip() {
        let meta = sample();
        let back = DatasetMeta::from_json(&meta.to_json()).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn json_roundtrip_with_tolerance() {
        let meta = DatasetMeta {
            codec: CodecKind::Zfpx { tolerance: 0.25 },
            ..sample()
        };
        let back = DatasetMeta::from_json(&meta.to_json()).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn full_u64_seed_range_roundtrips() {
        // Seeds above i64::MAX must survive the JSON round trip — a store
        // that writes successfully must always reopen.
        for seed in [u64::MAX, i64::MAX as u64 + 1, 0] {
            let meta = DatasetMeta { seed, ..sample() };
            assert_eq!(DatasetMeta::from_json(&meta.to_json()).unwrap().seed, seed);
        }
    }

    #[test]
    fn whitespace_and_field_order_are_flexible() {
        let text = "{\"iterations\":[1,2],\"seed\":7,\"codec\":\"raw\",
            \"procs\":[1,1,1],\"chunk\":[2,2,2],\"domain\":[4,4,4],
            \"version\":1,\"format\":\"apc-store\"}";
        let meta = DatasetMeta::from_json(text).unwrap();
        assert_eq!(meta.seed, 7);
        assert_eq!(meta.codec, CodecKind::Raw);
        assert_eq!(meta.iterations, vec![1, 2]);
    }

    #[test]
    fn geometry_validates_as_decomp() {
        let meta = sample();
        let d = meta.decomp().unwrap();
        assert_eq!(d.nranks(), 4);
        assert_eq!(d.n_blocks(), 128);
        let bad = DatasetMeta {
            chunk: Dims3::new(7, 10, 8),
            ..sample()
        };
        assert!(matches!(bad.decomp(), Err(StoreError::Geometry(_))));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for text in [
            "",
            "{",
            "{}",
            "not json at all",
            "{\"format\": \"zarr\", \"version\": 1}",
            "{\"format\": \"apc-store\", \"version\": 99}",
            // Unsorted iterations.
            "{\"format\":\"apc-store\",\"version\":1,\"domain\":[4,4,4],
              \"chunk\":[2,2,2],\"procs\":[1,1,1],\"codec\":\"raw\",
              \"seed\":1,\"iterations\":[5,2]}",
        ] {
            assert!(
                matches!(DatasetMeta::from_json(text), Err(StoreError::BadMeta(_))),
                "accepted malformed document: {text:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut text = sample().to_json();
        text.push_str("garbage");
        assert!(DatasetMeta::from_json(&text).is_err());
    }
}

//! Key/value chunk backends: a directory on disk, or memory for tests.
//!
//! Keys are `/`-separated UTF-8 paths (`meta.json`, `c/000100/000042`);
//! the directory backend maps them straight onto the filesystem. All
//! methods take `&self` and every backend is `Sync`, because chunk reads
//! happen concurrently from the rank threads of a session run.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::StoreError;

/// Validate and extract `offset..offset + len` of `bytes` — the shared
/// bounds arithmetic of every in-memory [`StoreBackend::get_range`].
pub fn slice_range(bytes: &[u8], key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
    let size = bytes.len() as u64;
    let end = offset.checked_add(len).filter(|&e| e <= size);
    match end {
        Some(end) => Ok(bytes[offset as usize..end as usize].to_vec()),
        None => Err(StoreError::Range {
            key: key.to_owned(),
            offset,
            len,
            size,
        }),
    }
}

/// A flat key → bytes store. `get` on a missing key is
/// [`StoreError::NotFound`]; use [`StoreBackend::contains`] to probe.
///
/// Byte-range reads ([`StoreBackend::get_range`] / [`StoreBackend::size`])
/// have `get`-based defaults so every backend supports them, but a real
/// backend should override both with genuine partial I/O — the shard
/// container ([`crate::ShardReader`]) depends on range reads touching only
/// the requested bytes, not the whole shard.
pub trait StoreBackend: Send + Sync {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), StoreError>;
    fn get(&self, key: &str) -> Result<Vec<u8>, StoreError>;
    fn contains(&self, key: &str) -> Result<bool, StoreError>;

    /// Read exactly `len` bytes of `key` starting at `offset`. A range
    /// extending past the value is [`StoreError::Range`], never a short
    /// read.
    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        slice_range(&self.get(key)?, key, offset, len)
    }

    /// Total byte length of the value stored at `key`.
    fn size(&self, key: &str) -> Result<u64, StoreError> {
        Ok(self.get(key)?.len() as u64)
    }
}

macro_rules! forward_backend {
    ($wrapper:ty) => {
        impl<B: StoreBackend + ?Sized> StoreBackend for $wrapper {
            fn put(&self, key: &str, bytes: &[u8]) -> Result<(), StoreError> {
                (**self).put(key, bytes)
            }
            fn get(&self, key: &str) -> Result<Vec<u8>, StoreError> {
                (**self).get(key)
            }
            fn contains(&self, key: &str) -> Result<bool, StoreError> {
                (**self).contains(key)
            }
            fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
                (**self).get_range(key, offset, len)
            }
            fn size(&self, key: &str) -> Result<u64, StoreError> {
                (**self).size(key)
            }
        }
    };
}

forward_backend!(Box<B>);
forward_backend!(Arc<B>);
forward_backend!(&B);

/// On-disk backend: one file per key under a root directory.
///
/// Writes create parent directories on demand. Reads open the file per
/// call, so concurrent rank threads never contend on shared handles.
#[derive(Debug, Clone)]
pub struct DirStore {
    root: PathBuf,
}

impl DirStore {
    /// Bind to `root` (created, along with parents, if missing).
    pub fn create(root: &Path) -> Result<Self, StoreError> {
        std::fs::create_dir_all(root)?;
        Ok(Self {
            root: root.to_path_buf(),
        })
    }

    /// Bind to an existing `root`.
    pub fn open(root: &Path) -> Result<Self, StoreError> {
        if !root.is_dir() {
            return Err(StoreError::NotFound(root.display().to_string()));
        }
        Ok(Self {
            root: root.to_path_buf(),
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, key: &str) -> PathBuf {
        let mut p = self.root.clone();
        for part in key.split('/') {
            p.push(part);
        }
        p
    }
}

impl StoreBackend for DirStore {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let path = self.path_of(key);
        let Some(file_name) = path.file_name().map(ToOwned::to_owned) else {
            // A key like ".." or "a/.." has no final path segment to write
            // to; reject before touching the filesystem.
            return Err(StoreError::BadKey(key.to_owned()));
        };
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Write-then-rename so a key is either absent or complete: an
        // interrupted writer (kill, ENOSPC) must not leave a truncated
        // chunk that `contains` would report as present.
        let mut tmp_name = std::ffi::OsString::from(".");
        tmp_name.push(&file_name);
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        std::fs::write(&tmp, bytes)?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e.into())
            }
        }
    }

    fn get(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        match std::fs::read(self.path_of(key)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == ErrorKind::NotFound => Err(StoreError::NotFound(key.to_owned())),
            Err(e) => Err(e.into()),
        }
    }

    fn contains(&self, key: &str) -> Result<bool, StoreError> {
        Ok(self.path_of(key).is_file())
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        // Genuine partial I/O: seek + exact read, never the whole file.
        let mut file = match std::fs::File::open(self.path_of(key)) {
            Ok(f) => f,
            Err(e) if e.kind() == ErrorKind::NotFound => {
                return Err(StoreError::NotFound(key.to_owned()))
            }
            Err(e) => return Err(e.into()),
        };
        let size = file.metadata()?.len();
        if offset.checked_add(len).filter(|&end| end <= size).is_none() {
            return Err(StoreError::Range {
                key: key.to_owned(),
                offset,
                len,
                size,
            });
        }
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn size(&self, key: &str) -> Result<u64, StoreError> {
        match std::fs::metadata(self.path_of(key)) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == ErrorKind::NotFound => Err(StoreError::NotFound(key.to_owned())),
            Err(e) => Err(e.into()),
        }
    }
}

/// In-memory backend for tests and benchmarks: a `BTreeMap` behind an
/// `RwLock` (many concurrent readers, exclusive writers; deterministic
/// key order for diagnostics that iterate).
#[derive(Debug, Default)]
pub struct MemStore {
    map: RwLock<BTreeMap<String, Vec<u8>>>,
}

impl MemStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the map even if a writer panicked mid-`put`: values are plain
    /// byte vectors, so a poisoned lock cannot expose a torn invariant.
    fn read_map(&self) -> RwLockReadGuard<'_, BTreeMap<String, Vec<u8>>> {
        self.map.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_map(&self) -> RwLockWriteGuard<'_, BTreeMap<String, Vec<u8>>> {
        self.map.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of stored keys (diagnostics).
    pub fn len(&self) -> usize {
        self.read_map().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total stored bytes over all keys (compression diagnostics).
    pub fn nbytes(&self) -> usize {
        self.read_map().values().map(Vec::len).sum()
    }
}

impl StoreBackend for MemStore {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.write_map().insert(key.to_owned(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        self.read_map()
            .get(key)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(key.to_owned()))
    }

    fn contains(&self, key: &str) -> Result<bool, StoreError> {
        Ok(self.read_map().contains_key(key))
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        // Slice under the read lock: no full-value clone for range reads.
        let map = self.read_map();
        let bytes = map
            .get(key)
            .ok_or_else(|| StoreError::NotFound(key.to_owned()))?;
        slice_range(bytes, key, offset, len)
    }

    fn size(&self, key: &str) -> Result<u64, StoreError> {
        let map = self.read_map();
        map.get(key)
            .map(|b| b.len() as u64)
            .ok_or_else(|| StoreError::NotFound(key.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn StoreBackend) {
        assert!(!backend.contains("a/b").unwrap());
        assert!(matches!(backend.get("a/b"), Err(StoreError::NotFound(_))));
        backend.put("a/b", b"hello").unwrap();
        assert!(backend.contains("a/b").unwrap());
        assert_eq!(backend.get("a/b").unwrap(), b"hello");
        backend.put("a/b", b"rewritten").unwrap();
        assert_eq!(backend.get("a/b").unwrap(), b"rewritten");
        backend.put("top", b"").unwrap();
        assert_eq!(backend.get("top").unwrap(), b"");
    }

    #[test]
    fn mem_store_basics() {
        let store = MemStore::new();
        exercise(&store);
        assert_eq!(store.len(), 2);
        assert_eq!(store.nbytes(), b"rewritten".len());
    }

    #[test]
    fn dir_store_basics() {
        let root = std::env::temp_dir()
            .join("apc_store_backend_tests")
            .join("basics");
        let _ = std::fs::remove_dir_all(&root);
        let store = DirStore::create(&root).unwrap();
        exercise(&store);
        // Keys map to real nested files.
        assert!(root.join("a").join("b").is_file());
        // Reopen sees the same content.
        let again = DirStore::open(&root).unwrap();
        assert_eq!(again.get("a/b").unwrap(), b"rewritten");
    }

    #[test]
    fn dir_store_put_rejects_segmentless_keys() {
        let root = std::env::temp_dir()
            .join("apc_store_backend_tests")
            .join("badkey");
        let _ = std::fs::remove_dir_all(&root);
        let store = DirStore::create(&root).unwrap();
        // `..` as the final component leaves no file name to write to; the
        // put must fail typed, not panic or escape the root.
        for key in ["..", "a/.."] {
            assert!(
                matches!(store.put(key, b"x"), Err(StoreError::BadKey(_))),
                "key {key:?} must be rejected"
            );
        }
        assert_eq!(std::fs::read_dir(&root).unwrap().count(), 0);
    }

    #[test]
    fn dir_store_open_missing_root_is_error() {
        let root = std::env::temp_dir()
            .join("apc_store_backend_tests")
            .join("missing");
        let _ = std::fs::remove_dir_all(&root);
        assert!(matches!(
            DirStore::open(&root),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn boxed_backend_delegates() {
        let boxed: Box<dyn StoreBackend> = Box::new(MemStore::new());
        boxed.put("k", b"v").unwrap();
        assert_eq!(boxed.get("k").unwrap(), b"v");
        assert!(boxed.contains("k").unwrap());
    }
}

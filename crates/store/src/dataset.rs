//! The chunked dataset: a time series of 3D arrays over a backend.

use std::sync::Arc;

use apc_grid::{Block, BlockData, BlockId, Dims3, DomainDecomp};

use crate::backend::StoreBackend;
use crate::cache::{CachedBackend, Readahead, SharedCachedBackend};
use crate::meta::{DatasetMeta, META_KEY};
use crate::shard::ShardedStore;
use crate::StoreError;

/// A stored time series of chunked 3D `f32` arrays.
///
/// Chunks coincide with the blocks of the dataset's
/// [`DomainDecomp`], so the pipeline's unit of scoring/reduction and the
/// store's unit of I/O are the same thing: a rank session reads exactly
/// `blocks_per_rank` chunks per iteration, each one seek-free and
/// independently compressed.
///
/// Reads take `&self` and backends are `Sync`, so the rank threads of a
/// session pull their chunks concurrently.
pub struct ChunkedDataset<B> {
    backend: B,
    meta: DatasetMeta,
    decomp: DomainDecomp,
}

/// A dataset over a type-erased backend — what crosses crate boundaries
/// (e.g. `apc-core`'s `Prepared::from_store` accepts disk- and
/// memory-backed datasets alike through this alias).
pub type DynChunkedDataset = ChunkedDataset<Box<dyn StoreBackend>>;

impl<B: StoreBackend> ChunkedDataset<B> {
    /// Create a new dataset: validates the geometry and writes the
    /// metadata document. Chunks are written afterwards with
    /// [`ChunkedDataset::write_chunk`].
    pub fn create(backend: B, meta: DatasetMeta) -> Result<Self, StoreError> {
        let decomp = meta.decomp()?;
        backend.put(META_KEY, meta.to_json().as_bytes())?;
        Ok(Self {
            backend,
            meta,
            decomp,
        })
    }

    /// Open an existing dataset by reading its metadata document.
    pub fn open(backend: B) -> Result<Self, StoreError> {
        let bytes = backend.get(META_KEY).map_err(|e| match e {
            StoreError::NotFound(_) => {
                StoreError::BadMeta("no meta.json — not an apc-store dataset".to_owned())
            }
            other => other,
        })?;
        let text = String::from_utf8(bytes)
            .map_err(|_| StoreError::BadMeta("meta.json is not utf-8".to_owned()))?;
        let meta = DatasetMeta::from_json(&text)?;
        let decomp = meta.decomp()?;
        Ok(Self {
            backend,
            meta,
            decomp,
        })
    }

    /// Open honoring the chunk layout recorded in the metadata: a
    /// `shard_chunks` field wraps the backend in a [`ShardedStore`] so
    /// chunk reads become shard byte-range reads, while a plain layout
    /// opens the backend as-is. Callers that don't know (or care) how a
    /// dataset was written use this instead of [`ChunkedDataset::open`].
    pub fn open_auto(backend: B) -> Result<DynChunkedDataset, StoreError>
    where
        B: 'static,
    {
        // meta.json passes through a ShardedStore untouched, so probing
        // the layout through the raw backend is always correct.
        let shard_chunks = ChunkedDataset::open(&backend)?.meta().shard_chunks;
        match shard_chunks {
            Some(n) => ChunkedDataset::open(Box::new(ShardedStore::new(backend, n)) as _),
            None => ChunkedDataset::open(Box::new(backend) as _),
        }
    }

    /// [`ChunkedDataset::open_auto`] with a chunk cache (and iteration-
    /// order readahead) layered over the layout adapter: logical chunk
    /// payloads are cached whole against a `cache_bytes` budget, and a
    /// sequential replay prefetches the next iteration's chunk for the
    /// same rank. Also returns the [`CachedBackend`] handle so callers
    /// can observe hit/miss/prefetch statistics.
    ///
    /// The cache sits *above* any [`ShardedStore`], so a warm hit skips
    /// the shard index and range read entirely, and one cached entry maps
    /// to one logical chunk regardless of layout.
    pub fn open_auto_cached(
        backend: B,
        cache_bytes: usize,
    ) -> Result<(DynChunkedDataset, SharedCachedBackend), StoreError>
    where
        B: 'static,
    {
        let probe = ChunkedDataset::open(&backend)?;
        let readahead = Readahead::new(probe.meta().iterations.iter().map(|&i| i as u64).collect());
        let shard_chunks = probe.meta().shard_chunks;
        let layered: Box<dyn StoreBackend> = match shard_chunks {
            Some(n) => Box::new(ShardedStore::new(backend, n)),
            None => Box::new(backend),
        };
        let cached = Arc::new(CachedBackend::new(layered, cache_bytes).with_readahead(readahead));
        let ds = ChunkedDataset::open(Box::new(Arc::clone(&cached)) as Box<dyn StoreBackend>)?;
        Ok((ds, cached))
    }

    pub fn meta(&self) -> &DatasetMeta {
        &self.meta
    }

    pub fn decomp(&self) -> &DomainDecomp {
        &self.decomp
    }

    /// Stored iterations, strictly increasing.
    pub fn iterations(&self) -> &[usize] {
        &self.meta.iterations
    }

    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Chunk dims (≡ block dims of the decomposition).
    pub fn chunk_dims(&self) -> Dims3 {
        self.meta.chunk
    }

    /// Store key of one chunk.
    pub fn chunk_key(iteration: usize, id: BlockId) -> String {
        format!("c/{iteration:06}/{id:06}")
    }

    fn check_iteration(&self, iteration: usize) -> Result<(), StoreError> {
        if self.meta.iterations.binary_search(&iteration).is_err() {
            return Err(StoreError::NotFound(format!(
                "iteration {iteration} is not in the stored set"
            )));
        }
        Ok(())
    }

    /// Compress and store one chunk (`samples` in x-fastest block layout).
    pub fn write_chunk(
        &self,
        iteration: usize,
        id: BlockId,
        samples: &[f32],
    ) -> Result<(), StoreError> {
        self.check_iteration(iteration)?;
        let dims = self.meta.chunk;
        if samples.len() != dims.len() {
            return Err(StoreError::ChunkShape {
                expected: dims.len(),
                got: samples.len(),
            });
        }
        let bytes = self.meta.codec.encode_chunk(samples, dims);
        self.backend.put(&Self::chunk_key(iteration, id), &bytes)
    }

    /// Read and decompress one chunk's samples.
    pub fn read_chunk(&self, iteration: usize, id: BlockId) -> Result<Vec<f32>, StoreError> {
        self.check_iteration(iteration)?;
        let bytes = self.backend.get(&Self::chunk_key(iteration, id))?;
        self.meta.codec.decode_chunk(&bytes, self.meta.chunk)
    }

    /// Read one chunk as a pipeline [`Block`] (full payload, global
    /// extent from the decomposition).
    pub fn read_block(&self, iteration: usize, id: BlockId) -> Result<Block, StoreError> {
        Ok(Block {
            id,
            extent: self.decomp.block_extent(id),
            data: BlockData::Full(self.read_chunk(iteration, id)?),
        })
    }

    /// Read all blocks of one rank at `iteration`, in the decomposition's
    /// block order — the per-iteration input of a pipeline rank. This is
    /// the lazy path `Prepared::from_store` drives from inside the rank
    /// threads: nothing outside the rank's own chunks is touched.
    pub fn read_rank_blocks(
        &self,
        iteration: usize,
        rank: usize,
    ) -> Result<Vec<Block>, StoreError> {
        self.decomp
            .blocks_of_rank(rank)
            .into_iter()
            .map(|id| self.read_block(iteration, id))
            .collect()
    }

    /// Whether every chunk of `iteration` is present (a completeness probe
    /// for partially-written stores).
    pub fn iteration_complete(&self, iteration: usize) -> Result<bool, StoreError> {
        self.check_iteration(iteration)?;
        for id in self.decomp.all_blocks() {
            if !self.backend.contains(&Self::chunk_key(iteration, id))? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStore;
    use crate::codec::CodecKind;
    use apc_grid::ProcGrid;

    fn tiny_meta(codec: CodecKind) -> DatasetMeta {
        DatasetMeta {
            domain: Dims3::new(8, 8, 4),
            chunk: Dims3::new(4, 4, 2),
            procs: ProcGrid::new(2, 1, 1),
            codec,
            seed: 9,
            iterations: vec![10, 20],
            shard_chunks: None,
        }
    }

    fn chunk_data(dims: Dims3, salt: f32) -> Vec<f32> {
        (0..dims.len())
            .map(|i| (i as f32 * 0.21 + salt).sin() * 30.0)
            .collect()
    }

    #[test]
    fn create_open_read_write_roundtrip() {
        let meta = tiny_meta(CodecKind::Fpz);
        let store = ChunkedDataset::create(MemStore::new(), meta.clone()).unwrap();
        let dims = store.chunk_dims();
        for &it in &[10usize, 20] {
            for id in store.decomp().all_blocks() {
                store
                    .write_chunk(it, id, &chunk_data(dims, (it + id as usize) as f32))
                    .unwrap();
            }
        }
        assert!(store.iteration_complete(10).unwrap());
        // Reopen over the same backend and read back.
        let reopened = ChunkedDataset::open(store.backend).unwrap();
        assert_eq!(reopened.meta(), &meta);
        for id in reopened.decomp().all_blocks() {
            let got = reopened.read_chunk(20, id).unwrap();
            assert_eq!(
                got,
                chunk_data(dims, (20 + id as usize) as f32),
                "chunk {id}"
            );
        }
    }

    #[test]
    fn read_block_carries_extent_and_rank_blocks_cover_rank() {
        let store = ChunkedDataset::create(MemStore::new(), tiny_meta(CodecKind::Raw)).unwrap();
        let dims = store.chunk_dims();
        for id in store.decomp().all_blocks() {
            store
                .write_chunk(10, id, &chunk_data(dims, id as f32))
                .unwrap();
        }
        let b = store.read_block(10, 3).unwrap();
        assert_eq!(b.id, 3);
        assert_eq!(b.extent, store.decomp().block_extent(3));
        assert!(!b.is_reduced());
        for rank in 0..store.decomp().nranks() {
            let blocks = store.read_rank_blocks(10, rank).unwrap();
            let ids: Vec<BlockId> = blocks.iter().map(|b| b.id).collect();
            assert_eq!(ids, store.decomp().blocks_of_rank(rank));
        }
    }

    #[test]
    fn unknown_iteration_and_missing_chunk_are_errors() {
        let store = ChunkedDataset::create(MemStore::new(), tiny_meta(CodecKind::Raw)).unwrap();
        assert!(matches!(
            store.read_chunk(99, 0),
            Err(StoreError::NotFound(_))
        ));
        assert!(matches!(
            store.read_chunk(10, 0),
            Err(StoreError::NotFound(_))
        ));
        assert!(!store.iteration_complete(10).unwrap());
        let dims = store.chunk_dims();
        assert!(matches!(
            store.write_chunk(10, 0, &chunk_data(dims, 0.0)[..5]),
            Err(StoreError::ChunkShape { .. })
        ));
    }

    #[test]
    fn open_without_meta_is_bad_meta() {
        assert!(matches!(
            ChunkedDataset::open(MemStore::new()),
            Err(StoreError::BadMeta(_))
        ));
    }

    #[test]
    fn type_erased_dataset_works() {
        let backend: Box<dyn StoreBackend> = Box::new(MemStore::new());
        let store: DynChunkedDataset =
            ChunkedDataset::create(backend, tiny_meta(CodecKind::Lz)).unwrap();
        let dims = store.chunk_dims();
        store.write_chunk(10, 0, &chunk_data(dims, 1.0)).unwrap();
        assert_eq!(store.read_chunk(10, 0).unwrap(), chunk_data(dims, 1.0));
    }

    #[test]
    fn open_auto_follows_the_recorded_layout() {
        // Write sharded: the meta records shard_chunks and the chunks
        // land inside shard containers rather than one key each.
        let meta = DatasetMeta {
            shard_chunks: Some(3),
            ..tiny_meta(CodecKind::Fpz)
        };
        let inner = std::sync::Arc::new(MemStore::new());
        let sharded = ShardedStore::new(std::sync::Arc::clone(&inner), 3);
        let store = ChunkedDataset::create(sharded, meta).unwrap();
        let dims = store.chunk_dims();
        for &it in &[10usize, 20] {
            for id in store.decomp().all_blocks() {
                store
                    .write_chunk(it, id, &chunk_data(dims, (it + id as usize) as f32))
                    .unwrap();
            }
        }
        store.backend().flush().unwrap();
        assert!(!inner.contains("c/000010/000000").unwrap());
        assert!(inner.contains("c/000010/s000000").unwrap());

        // open_auto on the *raw* backend reads through the shards…
        let auto = ChunkedDataset::open_auto(std::sync::Arc::clone(&inner)).unwrap();
        assert_eq!(auto.meta().shard_chunks, Some(3));
        for id in auto.decomp().all_blocks() {
            assert_eq!(
                auto.read_chunk(20, id).unwrap(),
                chunk_data(dims, (20 + id as usize) as f32)
            );
        }
        assert!(auto.iteration_complete(10).unwrap());

        // …and on an unsharded dataset it opens plain.
        let plain = ChunkedDataset::create(MemStore::new(), tiny_meta(CodecKind::Raw)).unwrap();
        plain.write_chunk(10, 0, &chunk_data(dims, 1.0)).unwrap();
        let auto = ChunkedDataset::open_auto(plain.backend).unwrap();
        assert_eq!(auto.meta().shard_chunks, None);
        assert_eq!(auto.read_chunk(10, 0).unwrap(), chunk_data(dims, 1.0));
    }

    #[test]
    fn corrupt_chunk_is_codec_error() {
        let store = ChunkedDataset::create(MemStore::new(), tiny_meta(CodecKind::Fpz)).unwrap();
        store
            .backend()
            .put(&ChunkedDataset::<MemStore>::chunk_key(10, 0), &[1, 0xFF])
            .unwrap();
        assert!(matches!(store.read_chunk(10, 0), Err(StoreError::Codec(_))));
    }
}

//! Shard containers: many values packed into one store key, read back
//! through byte ranges.
//!
//! One file per chunk (apc-store) or per frame (apc-serve) hits a
//! filesystem wall at the scale the paper's replay workflow implies —
//! millions of tiny files. The fix, borrowed from the zarr sharding
//! codec, is a container that concatenates many payloads into a single
//! shard value with a trailing index, so a reader resolves
//! `key → (shard, offset, len)` and fetches exactly one payload with one
//! [`StoreBackend::get_range`] call, never the whole shard.
//!
//! # Container format (version 1)
//!
//! ```text
//! [payload 0][payload 1]…[payload n-1][index][index_len: u64 LE][b"APCSHRD"][1u8]
//! ```
//!
//! The index is a sequence of entries, one per payload:
//!
//! ```text
//! [key_len: u16 LE][key: UTF-8][offset: u64 LE][len: u64 LE]
//! ```
//!
//! Offsets are absolute from the start of the shard. The footer sits at
//! the *end* so a writer streams payloads first and a reader bootstraps
//! from two small range reads (16-byte trailer, then the index) without
//! touching any payload bytes.
//!
//! Three layers build on the format:
//!
//! * [`ShardWriter`] packs payloads and emits the container;
//! * [`ShardReader`] opens a container and serves per-key range reads;
//! * [`ShardedStore`] adapts any [`StoreBackend`] so *callers keep using
//!   logical keys*: numeric-tailed keys (`c/000100/000042`,
//!   `f/run/000300/0003`) are grouped `chunks_per_shard` at a time into
//!   shard keys (`c/000100/s000000`), everything else (`meta.json`,
//!   manifests) passes through unsharded.
//!
//! Corruption — truncated footers, bit-flipped indexes, out-of-bounds or
//! overlapping entries, zero-entry shards — surfaces as
//! [`StoreError::Shard`], never a panic (`shard_adversarial` integration
//! tests pin this).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use crate::backend::slice_range;
use crate::{StoreBackend, StoreError};

/// Footer magic: 7 identifying bytes plus a one-byte format version.
const MAGIC: &[u8; 7] = b"APCSHRD";
const VERSION: u8 = 1;
/// `[index_len: u64][magic: 7][version: 1]`.
const FOOTER_LEN: u64 = 16;

fn shard_err(shard_key: &str, what: impl std::fmt::Display) -> StoreError {
    StoreError::Shard(format!("{shard_key}: {what}"))
}

/// Map a logical key to the shard key holding it, or `None` if the key
/// is not sharded (no `/`-separated all-digit final segment).
///
/// `c/000100/000042` with 16 chunks per shard maps to `c/000100/s000002`
/// (`42 / 16 = 2`). Shard keys start with `s`, so they can never collide
/// with the all-digit logical keys they contain.
pub fn shard_key_of(key: &str, chunks_per_shard: usize) -> Option<String> {
    let (parent, last) = key.rsplit_once('/')?;
    if last.is_empty() || !last.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let id: u64 = last.parse().ok()?;
    let group = id / chunks_per_shard.max(1) as u64;
    Some(format!("{parent}/s{group:06}"))
}

/// Packs payloads into a shard container.
///
/// Payloads are laid out in append order; [`ShardWriter::finish`] (or
/// [`ShardWriter::write_to`]) emits the trailing index and footer. An
/// empty shard is deliberately unrepresentable — `finish` on a writer
/// with no entries is a typed error, matching the reader which rejects
/// zero-entry containers.
#[derive(Debug, Default)]
pub struct ShardWriter {
    payload: Vec<u8>,
    entries: Vec<(String, u64, u64)>,
    keys: BTreeSet<String>,
}

impl ShardWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one payload under `key`. Duplicate, empty or oversized
    /// (> 64 KiB) keys are errors.
    pub fn append(&mut self, key: &str, bytes: &[u8]) -> Result<(), StoreError> {
        if key.is_empty() {
            return Err(StoreError::Shard("empty entry key".into()));
        }
        if key.len() > u16::MAX as usize {
            return Err(StoreError::Shard(format!(
                "entry key of {} bytes exceeds the u16 key-length field",
                key.len()
            )));
        }
        if !self.keys.insert(key.to_owned()) {
            return Err(StoreError::Shard(format!("duplicate entry key {key:?}")));
        }
        let offset = self.payload.len() as u64;
        self.payload.extend_from_slice(bytes);
        self.entries
            .push((key.to_owned(), offset, bytes.len() as u64));
        Ok(())
    }

    /// Number of appended payloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total payload bytes appended so far (excludes index and footer).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Emit the complete container: payloads, index, footer.
    pub fn finish(self) -> Result<Vec<u8>, StoreError> {
        if self.entries.is_empty() {
            return Err(StoreError::Shard(
                "refusing to write a zero-entry shard".into(),
            ));
        }
        let mut out = self.payload;
        let index_start = out.len();
        for (key, offset, len) in &self.entries {
            out.extend_from_slice(&(key.len() as u16).to_le_bytes());
            out.extend_from_slice(key.as_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        let index_len = (out.len() - index_start) as u64;
        out.extend_from_slice(&index_len.to_le_bytes());
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        Ok(out)
    }

    /// Finish and store the container under `shard_key`.
    pub fn write_to<B: StoreBackend + ?Sized>(
        self,
        backend: &B,
        shard_key: &str,
    ) -> Result<(), StoreError> {
        backend.put(shard_key, &self.finish()?)
    }
}

/// Parsed, validated shard index: every entry in bounds, non-overlapping
/// and uniquely keyed.
#[derive(Debug)]
struct ShardIndex {
    /// Entries in index order (the writer's append order).
    entries: Vec<(String, u64, u64)>,
    by_key: BTreeMap<String, (u64, u64)>,
}

impl ShardIndex {
    /// Load the index via footer-only range reads — payload bytes are
    /// never touched.
    fn load<B: StoreBackend + ?Sized>(
        backend: &B,
        shard_key: &str,
    ) -> Result<ShardIndex, StoreError> {
        let size = backend.size(shard_key)?;
        if size < FOOTER_LEN {
            return Err(shard_err(
                shard_key,
                format_args!("{size} bytes is shorter than the {FOOTER_LEN}-byte footer"),
            ));
        }
        let footer = backend.get_range(shard_key, size - FOOTER_LEN, FOOTER_LEN)?;
        if &footer[8..15] != MAGIC {
            return Err(shard_err(shard_key, "footer magic mismatch"));
        }
        if footer[15] != VERSION {
            return Err(shard_err(
                shard_key,
                format_args!("unsupported shard version {}", footer[15]),
            ));
        }
        // apc-lint: allow(unwrap-in-lib): footer is FOOTER_LEN bytes by the read above; the 8-byte sub-slice is infallible
        let index_len = u64::from_le_bytes(footer[..8].try_into().expect("8-byte slice"));
        if index_len == 0 {
            return Err(shard_err(shard_key, "zero-entry shard"));
        }
        if index_len > size - FOOTER_LEN {
            return Err(shard_err(
                shard_key,
                format_args!("index of {index_len} bytes does not fit a {size}-byte shard"),
            ));
        }
        let payload_end = size - FOOTER_LEN - index_len;
        let index = backend.get_range(shard_key, payload_end, index_len)?;
        Self::parse(&index, payload_end, shard_key)
    }

    fn parse(index: &[u8], payload_end: u64, shard_key: &str) -> Result<ShardIndex, StoreError> {
        let mut entries = Vec::new();
        let mut by_key = BTreeMap::new();
        let mut cur = 0usize;
        let take = |cur: &mut usize, n: usize| -> Result<std::ops::Range<usize>, StoreError> {
            let end = cur
                .checked_add(n)
                .filter(|&e| e <= index.len())
                .ok_or_else(|| shard_err(shard_key, "truncated index entry"))?;
            let r = *cur..end;
            *cur = end;
            Ok(r)
        };
        while cur < index.len() {
            let key_len =
                // apc-lint: allow(unwrap-in-lib): `take` returned exactly 2 bytes; the convert is infallible
                u16::from_le_bytes(index[take(&mut cur, 2)?].try_into().expect("2 bytes")) as usize;
            if key_len == 0 {
                return Err(shard_err(shard_key, "index entry with an empty key"));
            }
            let key = std::str::from_utf8(&index[take(&mut cur, key_len)?])
                .map_err(|_| shard_err(shard_key, "index entry key is not UTF-8"))?
                .to_owned();
            // apc-lint: allow(unwrap-in-lib): `take` returned exactly 8 bytes; the convert is infallible
            let offset = u64::from_le_bytes(index[take(&mut cur, 8)?].try_into().expect("8 bytes"));
            // apc-lint: allow(unwrap-in-lib): `take` returned exactly 8 bytes; the convert is infallible
            let len = u64::from_le_bytes(index[take(&mut cur, 8)?].try_into().expect("8 bytes"));
            if offset
                .checked_add(len)
                .filter(|&e| e <= payload_end)
                .is_none()
            {
                return Err(shard_err(
                    shard_key,
                    format_args!(
                        "entry {key:?} at {offset}+{len} exceeds the {payload_end}-byte payload region"
                    ),
                ));
            }
            if by_key.insert(key.clone(), (offset, len)).is_some() {
                return Err(shard_err(
                    shard_key,
                    format_args!("duplicate index entry for key {key:?}"),
                ));
            }
            entries.push((key, offset, len));
        }
        // Payload regions must not overlap: sorted by offset, each entry
        // must start at or after the previous one's end.
        let mut spans: Vec<(u64, u64)> = entries.iter().map(|(_, o, l)| (*o, *l)).collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            let (prev_off, prev_len) = w[0];
            if w[1].0 < prev_off + prev_len {
                return Err(shard_err(shard_key, "overlapping index entries"));
            }
        }
        Ok(ShardIndex { entries, by_key })
    }
}

/// Reads single payloads out of a shard container.
///
/// [`ShardReader::open`] performs exactly two range reads (trailer, then
/// index); each [`ShardReader::read_range`] performs exactly one more,
/// covering only the requested payload.
pub struct ShardReader<'a, B: StoreBackend + ?Sized> {
    backend: &'a B,
    shard_key: String,
    index: ShardIndex,
}

impl<'a, B: StoreBackend + ?Sized> ShardReader<'a, B> {
    /// Open and validate the container stored at `shard_key`.
    pub fn open(backend: &'a B, shard_key: &str) -> Result<Self, StoreError> {
        Ok(Self {
            backend,
            shard_key: shard_key.to_owned(),
            index: ShardIndex::load(backend, shard_key)?,
        })
    }

    /// Entry keys in index (append) order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.index.entries.iter().map(|(k, _, _)| k.as_str())
    }

    /// Number of payloads in the shard.
    pub fn len(&self) -> usize {
        self.index.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        // A valid shard is never empty, but keep the pair honest.
        self.index.entries.is_empty()
    }

    pub fn contains(&self, key: &str) -> bool {
        self.index.by_key.contains_key(key)
    }

    /// The `(offset, len)` byte span of `key` within the shard.
    pub fn entry(&self, key: &str) -> Option<(u64, u64)> {
        self.index.by_key.get(key).copied()
    }

    /// Fetch the payload stored under `key` with a single byte-range
    /// read of exactly `len` bytes.
    pub fn read_range(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        let (offset, len) = self
            .entry(key)
            .ok_or_else(|| StoreError::NotFound(key.to_owned()))?;
        self.backend.get_range(&self.shard_key, offset, len)
    }
}

type Pending = BTreeMap<String, Vec<(String, Vec<u8>)>>;

/// A [`StoreBackend`] adapter that packs numeric-tailed keys into shard
/// containers, `chunks_per_shard` at a time, while non-numeric keys
/// (metadata, manifests) pass straight through to the inner backend.
///
/// Writes buffer in memory per shard group and seal automatically once a
/// group reaches `chunks_per_shard` entries; call [`ShardedStore::flush`]
/// to seal partial tail groups (dropping the store flushes best-effort).
/// Reads check the pending buffer first, then resolve
/// `key → (shard, offset, len)` through a cached shard index and issue a
/// single range read — so readers and writers interleave safely, which is
/// what the serving executor's cache-miss path needs.
///
/// Re-putting a key that already sealed rewrites its shard on the next
/// seal of that group (merge semantics); the common append-only workloads
/// never take that path.
pub struct ShardedStore<B: StoreBackend> {
    inner: B,
    chunks_per_shard: usize,
    pending: Mutex<Pending>,
    indexes: RwLock<BTreeMap<String, Arc<ShardIndex>>>,
}

impl<B: StoreBackend> ShardedStore<B> {
    /// Wrap `inner`, grouping `chunks_per_shard` (≥ 1) payloads per shard.
    pub fn new(inner: B, chunks_per_shard: usize) -> Self {
        assert!(chunks_per_shard > 0, "chunks_per_shard must be ≥ 1");
        Self {
            inner,
            chunks_per_shard,
            pending: Mutex::new(BTreeMap::new()),
            indexes: RwLock::new(BTreeMap::new()),
        }
    }

    pub fn inner(&self) -> &B {
        &self.inner
    }

    pub fn chunks_per_shard(&self) -> usize {
        self.chunks_per_shard
    }

    fn map_key(&self, key: &str) -> Option<String> {
        shard_key_of(key, self.chunks_per_shard)
    }

    /// Pending (buffered, unsealed) payload count — diagnostics.
    pub fn pending_len(&self) -> usize {
        lock(&self.pending).values().map(Vec::len).sum()
    }

    /// Seal every partially-filled shard group. Idempotent.
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut pending = lock(&self.pending);
        let mut shard_keys: Vec<String> = pending.keys().cloned().collect();
        shard_keys.sort();
        for sk in shard_keys {
            if let Some(items) = pending.remove(&sk) {
                self.seal(&sk, items)?;
            }
        }
        Ok(())
    }

    /// Cached shard index for `shard_key`, or `None` if no such shard.
    fn index_of(&self, shard_key: &str) -> Result<Option<Arc<ShardIndex>>, StoreError> {
        if let Some(idx) = rlock(&self.indexes).get(shard_key) {
            return Ok(Some(Arc::clone(idx)));
        }
        match ShardIndex::load(&self.inner, shard_key) {
            Ok(idx) => {
                let idx = Arc::new(idx);
                wlock(&self.indexes).insert(shard_key.to_owned(), Arc::clone(&idx));
                Ok(Some(idx))
            }
            Err(StoreError::NotFound(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Write `items` (plus anything already sealed under `shard_key` and
    /// not overridden) as one container, in sorted key order.
    fn seal(&self, shard_key: &str, items: Vec<(String, Vec<u8>)>) -> Result<(), StoreError> {
        let mut merged: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        if let Some(existing) = self.index_of(shard_key)? {
            for (key, offset, len) in &existing.entries {
                merged.insert(key.clone(), self.inner.get_range(shard_key, *offset, *len)?);
            }
        }
        for (key, bytes) in items {
            merged.insert(key, bytes);
        }
        let mut writer = ShardWriter::new();
        for (key, bytes) in &merged {
            writer.append(key, bytes)?;
        }
        writer.write_to(&self.inner, shard_key)?;
        wlock(&self.indexes).remove(shard_key);
        Ok(())
    }

    /// Pending bytes for `key` within its shard group, if buffered.
    fn pending_get(&self, shard_key: &str, key: &str) -> Option<Vec<u8>> {
        lock(&self.pending)
            .get(shard_key)?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, b)| b.clone())
    }

    /// Sealed `(offset, len)` span for `key`, or `NotFound`.
    fn sealed_entry(&self, shard_key: &str, key: &str) -> Result<(u64, u64), StoreError> {
        self.index_of(shard_key)?
            .and_then(|idx| idx.by_key.get(key).copied())
            .ok_or_else(|| StoreError::NotFound(key.to_owned()))
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A rank thread that panics mid-write must not wedge recovery runs
    // against the same store: recover the guard, the data is still
    // consistent (puts are whole-value).
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn rlock<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn wlock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

impl<B: StoreBackend> StoreBackend for ShardedStore<B> {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let Some(sk) = self.map_key(key) else {
            return self.inner.put(key, bytes);
        };
        let mut pending = lock(&self.pending);
        let group = pending.entry(sk.clone()).or_default();
        match group.iter_mut().find(|(k, _)| k == key) {
            Some((_, b)) => *b = bytes.to_vec(),
            None => group.push((key.to_owned(), bytes.to_vec())),
        }
        if group.len() >= self.chunks_per_shard {
            // apc-lint: allow(unwrap-in-lib): the group was inserted two lines up under this same lock guard
            let items = pending.remove(&sk).expect("group just filled");
            self.seal(&sk, items)?;
        }
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        let Some(sk) = self.map_key(key) else {
            return self.inner.get(key);
        };
        if let Some(bytes) = self.pending_get(&sk, key) {
            return Ok(bytes);
        }
        let (offset, len) = self.sealed_entry(&sk, key)?;
        self.inner.get_range(&sk, offset, len)
    }

    fn contains(&self, key: &str) -> Result<bool, StoreError> {
        let Some(sk) = self.map_key(key) else {
            return self.inner.contains(key);
        };
        if self.pending_get(&sk, key).is_some() {
            return Ok(true);
        }
        Ok(self
            .index_of(&sk)?
            .is_some_and(|idx| idx.by_key.contains_key(key)))
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        let Some(sk) = self.map_key(key) else {
            return self.inner.get_range(key, offset, len);
        };
        if let Some(bytes) = self.pending_get(&sk, key) {
            return slice_range(&bytes, key, offset, len);
        }
        let (base, total) = self.sealed_entry(&sk, key)?;
        if offset.checked_add(len).filter(|&e| e <= total).is_none() {
            return Err(StoreError::Range {
                key: key.to_owned(),
                offset,
                len,
                size: total,
            });
        }
        self.inner.get_range(&sk, base + offset, len)
    }

    fn size(&self, key: &str) -> Result<u64, StoreError> {
        let Some(sk) = self.map_key(key) else {
            return self.inner.size(key);
        };
        if let Some(bytes) = self.pending_get(&sk, key) {
            return Ok(bytes.len() as u64);
        }
        Ok(self.sealed_entry(&sk, key)?.1)
    }
}

impl<B: StoreBackend> Drop for ShardedStore<B> {
    fn drop(&mut self) {
        // Best-effort tail seal for stores dropped without an explicit
        // flush; skipped mid-panic so a failing test reports its own
        // assertion rather than a double panic.
        if !std::thread::panicking() {
            let _ = self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    #[test]
    fn key_mapping_groups_numeric_tails_only() {
        assert_eq!(
            shard_key_of("c/000100/000042", 16).as_deref(),
            Some("c/000100/s000002")
        );
        assert_eq!(
            shard_key_of("f/run/000300/0003", 8).as_deref(),
            Some("f/run/000300/s000000")
        );
        assert_eq!(shard_key_of("meta.json", 16), None);
        assert_eq!(shard_key_of("f/run/manifest.json", 16), None);
        assert_eq!(shard_key_of("c/000100/s000002", 16), None);
        assert_eq!(shard_key_of("c/000100/", 16), None);
    }

    #[test]
    fn writer_reader_roundtrip_preserves_order_and_bytes() {
        let mem = MemStore::new();
        let mut w = ShardWriter::new();
        w.append("c/000000/000000", b"alpha").unwrap();
        w.append("c/000000/000001", b"").unwrap();
        w.append("c/000000/000002", b"gamma!").unwrap();
        assert_eq!(w.len(), 3);
        w.write_to(&mem, "c/000000/s000000").unwrap();

        let r = ShardReader::open(&mem, "c/000000/s000000").unwrap();
        assert_eq!(
            r.keys().collect::<Vec<_>>(),
            ["c/000000/000000", "c/000000/000001", "c/000000/000002"]
        );
        assert_eq!(r.read_range("c/000000/000000").unwrap(), b"alpha");
        assert_eq!(r.read_range("c/000000/000001").unwrap(), b"");
        assert_eq!(r.read_range("c/000000/000002").unwrap(), b"gamma!");
        assert!(matches!(
            r.read_range("c/000000/000009"),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn writer_rejects_duplicates_and_empty_shards() {
        let mut w = ShardWriter::new();
        w.append("k/0", b"x").unwrap();
        assert!(matches!(w.append("k/0", b"y"), Err(StoreError::Shard(_))));
        assert!(matches!(w.append("", b"y"), Err(StoreError::Shard(_))));
        assert!(matches!(
            ShardWriter::new().finish(),
            Err(StoreError::Shard(_))
        ));
    }

    #[test]
    fn sharded_store_seals_full_groups_and_reads_back() {
        let store = ShardedStore::new(MemStore::new(), 4);
        for id in 0..10u32 {
            let key = format!("c/000000/{id:06}");
            store.put(&key, format!("payload-{id}").as_bytes()).unwrap();
        }
        // Two full groups sealed, one pending tail of 2.
        assert_eq!(store.inner().len(), 2);
        assert_eq!(store.pending_len(), 2);
        for id in 0..10u32 {
            let key = format!("c/000000/{id:06}");
            assert!(store.contains(&key).unwrap());
            assert_eq!(store.get(&key).unwrap(), format!("payload-{id}").as_bytes());
        }
        store.flush().unwrap();
        assert_eq!(store.pending_len(), 0);
        assert_eq!(store.inner().len(), 3);
        // Everything still readable after the tail sealed.
        for id in 0..10u32 {
            let key = format!("c/000000/{id:06}");
            assert_eq!(store.get(&key).unwrap(), format!("payload-{id}").as_bytes());
            assert_eq!(
                store.size(&key).unwrap(),
                format!("payload-{id}").len() as u64
            );
        }
        assert!(!store.contains("c/000000/000010").unwrap());
        assert!(matches!(
            store.get("c/000000/000010"),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn non_numeric_keys_pass_through_unsharded() {
        let store = ShardedStore::new(MemStore::new(), 4);
        store.put("meta.json", b"{}").unwrap();
        assert_eq!(store.get("meta.json").unwrap(), b"{}");
        assert_eq!(store.inner().get("meta.json").unwrap(), b"{}");
    }

    #[test]
    fn get_range_reads_sub_spans_of_pending_and_sealed_values() {
        let store = ShardedStore::new(MemStore::new(), 2);
        store.put("c/0/000000", b"abcdef").unwrap(); // pending
        assert_eq!(store.get_range("c/0/000000", 2, 3).unwrap(), b"cde");
        store.put("c/0/000001", b"ghijkl").unwrap(); // seals the group
        assert_eq!(store.pending_len(), 0);
        assert_eq!(store.get_range("c/0/000000", 2, 3).unwrap(), b"cde");
        assert_eq!(store.get_range("c/0/000001", 0, 6).unwrap(), b"ghijkl");
        assert!(matches!(
            store.get_range("c/0/000001", 4, 3),
            Err(StoreError::Range { .. })
        ));
    }

    #[test]
    fn reput_of_sealed_key_merges_on_next_seal() {
        let store = ShardedStore::new(MemStore::new(), 2);
        store.put("c/0/000000", b"old-0").unwrap();
        store.put("c/0/000001", b"old-1").unwrap(); // sealed
        store.put("c/0/000000", b"new-0").unwrap(); // pending override
        assert_eq!(store.get("c/0/000000").unwrap(), b"new-0");
        assert_eq!(store.get("c/0/000001").unwrap(), b"old-1");
        store.flush().unwrap();
        assert_eq!(store.get("c/0/000000").unwrap(), b"new-0");
        assert_eq!(store.get("c/0/000001").unwrap(), b"old-1");
    }

    #[test]
    fn drop_flushes_pending_tail() {
        let inner = Arc::new(MemStore::new());
        {
            let store = ShardedStore::new(Arc::clone(&inner), 8);
            store.put("c/0/000000", b"tail").unwrap();
        }
        let r = ShardReader::open(inner.as_ref(), "c/0/s000000").unwrap();
        assert_eq!(r.read_range("c/0/000000").unwrap(), b"tail");
    }
}

//! A minimal, strict parser for the flat JSON subset the metadata
//! documents use: one object of string / integer / float / integer-array
//! values. Shared by [`crate::meta`] (`meta.json`) and by downstream
//! metadata documents (`apc-serve`'s run manifests), so the "hand-rolled
//! JSON, no external dependency" rule has exactly one implementation.

/// A parsed JSON value of the subset the metadata documents use.
/// Integers are `i128` so the full `u64` seed range survives the round
/// trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i128),
    Float(f64),
    /// Integer array (the only array shape the document contains).
    Arr(Vec<i128>),
}

/// Parse `{"key": value, ...}` with string / integer / float / int-array
/// values. Returns fields in document order.
pub fn parse_object(text: &str) -> Result<Vec<(String, Value)>, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect_byte(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect_byte(b':')?;
            p.skip_ws();
            let value = p.value()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after document".to_owned());
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    /// A string literal (no escape sequences — keys and codec names never
    /// need them; a backslash is rejected loudly).
    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let start = self.pos;
        loop {
            match self.next() {
                Some(b'"') => break,
                Some(b'\\') => return Err("escape sequences unsupported".to_owned()),
                Some(_) => {}
                None => return Err("unterminated string".to_owned()),
            }
        }
        String::from_utf8(self.bytes[start..self.pos - 1].to_vec())
            .map_err(|_| "invalid utf-8 in string".to_owned())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_owned())?;
        if tok.contains(['.', 'e', 'E']) {
            tok.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad float {tok:?}: {e}"))
        } else {
            tok.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| format!("bad integer {tok:?}: {e}"))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    match self.number()? {
                        Value::Int(v) => items.push(v),
                        other => return Err(format!("array holds non-integer {other:?}")),
                    }
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => break,
                        other => return Err(format!("expected ',' or ']', got {other:?}")),
                    }
                }
                Ok(Value::Arr(items))
            }
            _ => self.number(),
        }
    }
}

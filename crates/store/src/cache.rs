//! The generalized chunk cache: a deterministic, byte-size-bounded LRU
//! ([`ChunkCache`]), an iteration-order prefetch policy ([`Readahead`]),
//! and the [`CachedBackend`] adapter that layers both over any
//! [`StoreBackend`] — the one caching implementation every reader shares
//! (`Prepared::from_store` lazy rank reads, sharded datasets, and the
//! serving executor's hot-frame cache in `apc-core`).
//!
//! # Design
//!
//! * **Byte-bounded, not entry-bounded.** Capacity is a byte budget;
//!   every insert charges the payload length and evicts
//!   least-recently-used entries until the budget holds again. An item
//!   larger than the whole budget *bypasses* the cache (dropping any
//!   stale entry under its key) instead of evicting the entire working
//!   set for a value that can never fit.
//! * **O(log n) recency.** Recency is a sequence-numbered
//!   `BTreeMap<u64, K>` index next to the entry map: a hit removes one
//!   sequence number and inserts the next one — two logarithmic map
//!   operations, never a linear scan. The sequence counter is pure
//!   arithmetic, so eviction order depends only on the access sequence —
//!   no wall-clock anywhere, and replays are deterministic.
//! * **Observable.** [`CacheStats`] counts hits, misses, insertions,
//!   evictions (and their bytes), oversized bypasses, and how many
//!   prefetched entries were actually used — the readahead policy is
//!   measurable, not a matter of faith.
//!
//! # Transparency contract
//!
//! [`CachedBackend`] returns exactly the bytes its inner backend would:
//! reads populate the cache with what the backend returned, and writes go
//! through to the backend before updating the cache. Replaying a pipeline
//! with the cache on is therefore **byte-identical** to replaying with it
//! off (pinned by the workspace `properties` suite); only wall-clock and
//! the stats change. Writes that bypass the adapter and mutate the inner
//! backend directly are outside the contract and can leave stale entries.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::backend::{slice_range, StoreBackend};
use crate::StoreError;

/// The shared caching-layer handle returned by the cached open paths
/// (`ChunkedDataset::open_auto_cached` and friends): a [`CachedBackend`]
/// over a type-erased backend, reference-counted so the dataset reads
/// through it while the caller keeps it for statistics and cache control.
pub type SharedCachedBackend = Arc<CachedBackend<Box<dyn StoreBackend>>>;

/// Counters of one cache's lifetime (monotonic; snapshot via
/// [`ChunkCache::stats`] or [`CachedBackend::stats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that fell through to the backing store.
    pub misses: usize,
    /// Values stored (demand inserts + prefetch inserts + refreshes).
    pub insertions: usize,
    /// Entries evicted to hold the byte budget.
    pub evictions: usize,
    /// Payload bytes those evictions released.
    pub evicted_bytes: u64,
    /// Inserts rejected by the oversized-single-item rule (payload larger
    /// than the whole budget).
    pub oversized_rejects: usize,
    /// Entries inserted by readahead rather than by a demand miss.
    pub prefetched: usize,
    /// Prefetched entries that later served a lookup. `prefetched -
    /// prefetch_used` is the prefetched-but-unused count — the readahead
    /// policy's waste.
    pub prefetch_used: usize,
}

/// One cached payload plus its bookkeeping.
#[derive(Debug)]
struct Entry {
    bytes: Vec<u8>,
    /// This entry's position in the recency index (its key there).
    seq: u64,
    /// Inserted by readahead and not yet used by a lookup.
    prefetched: bool,
}

/// A deterministic, byte-size-bounded LRU cache.
///
/// Generic over the key (`apc-store` readers use `String` store keys;
/// `apc-serve` aliases `ChunkCache<(u64, u32)>` as its `FrameCache`).
/// All operations are `O(log n)`: the entry map and the sequence-numbered
/// recency index are both B-trees, and a recency refresh moves exactly one
/// index entry. A budget of `0` is the legal degenerate cache that stores
/// nothing and misses everything — the uncached baseline.
///
/// ```
/// use apc_store::cache::ChunkCache;
///
/// let mut cache: ChunkCache<&str> = ChunkCache::new(8);
/// cache.put("a", vec![0; 5]);
/// cache.put("b", vec![0; 3]); // 8 bytes used: exactly at budget
/// assert!(cache.get(&"a").is_some());
/// cache.put("c", vec![0; 3]); // evicts "b", the least recently used
/// assert!(cache.get(&"b").is_none());
/// assert_eq!(cache.used_bytes(), 8);
/// ```
#[derive(Debug)]
pub struct ChunkCache<K> {
    budget: usize,
    used: usize,
    next_seq: u64,
    entries: BTreeMap<K, Entry>,
    /// Sequence number → key, from least- to most-recently used.
    recency: BTreeMap<u64, K>,
    stats: CacheStats,
}

impl<K: Ord + Clone> ChunkCache<K> {
    /// A cache holding at most `budget_bytes` of payload.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget: budget_bytes,
            used: 0,
            next_seq: 0,
            entries: BTreeMap::new(),
            recency: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Payload bytes currently charged against the budget.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Lifetime counters (monotonic).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Lookups answered from the cache (shorthand for `stats().hits`).
    pub fn hits(&self) -> usize {
        self.stats.hits
    }

    /// Lookups that missed (shorthand for `stats().misses`).
    pub fn misses(&self) -> usize {
        self.stats.misses
    }

    /// Look up a payload, counting the hit or miss and refreshing recency
    /// on a hit (one removal and one insert in the recency index —
    /// `O(log n)`, never a scan).
    pub fn get(&mut self, key: &K) -> Option<&[u8]> {
        let old_seq = match self.entries.get(key) {
            Some(e) => e.seq,
            None => {
                self.stats.misses += 1;
                return None;
            }
        };
        self.stats.hits += 1;
        self.recency.remove(&old_seq);
        self.next_seq += 1;
        let seq = self.next_seq;
        self.recency.insert(seq, key.clone());
        let e = self.entries.get_mut(key)?;
        e.seq = seq;
        if e.prefetched {
            e.prefetched = false;
            self.stats.prefetch_used += 1;
        }
        Some(e.bytes.as_slice())
    }

    /// Probe without touching recency or counting a hit/miss.
    pub fn peek(&self, key: &K) -> Option<&[u8]> {
        self.entries.get(key).map(|e| e.bytes.as_slice())
    }

    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Insert (or refresh) a payload, evicting least-recently-used entries
    /// until the byte budget holds. A refresh with a different-sized
    /// payload re-charges the accounting — shrink frees budget, growth can
    /// itself trigger evictions. Does not count as a hit or miss.
    pub fn put(&mut self, key: K, bytes: Vec<u8>) {
        self.insert(key, bytes, false);
    }

    /// [`ChunkCache::put`] for readahead: the entry is tagged prefetched
    /// until a [`ChunkCache::get`] consumes it, so unused prefetches are
    /// countable.
    pub fn put_prefetched(&mut self, key: K, bytes: Vec<u8>) {
        self.insert(key, bytes, true);
    }

    fn insert(&mut self, key: K, bytes: Vec<u8>, prefetched: bool) {
        if bytes.len() > self.budget || self.budget == 0 {
            // Oversized-single-item rule: admitting this value would evict
            // the entire working set and still not fit (or the budget is
            // the zero/uncached baseline). Bypass — and drop any stale
            // entry under the key, since the caller just redefined it.
            self.stats.oversized_rejects += 1;
            self.remove(&key);
            return;
        }
        self.stats.insertions += 1;
        if prefetched {
            self.stats.prefetched += 1;
        }
        let new_len = bytes.len();
        self.next_seq += 1;
        let seq = self.next_seq;
        if let Some(old) = self.entries.insert(
            key.clone(),
            Entry {
                bytes,
                seq,
                prefetched,
            },
        ) {
            self.used -= old.bytes.len();
            self.recency.remove(&old.seq);
        }
        self.used += new_len;
        self.recency.insert(seq, key);
        self.evict_to_budget();
    }

    /// Remove one entry, releasing its budget charge. Not an eviction:
    /// the stats are untouched.
    pub fn remove(&mut self, key: &K) -> Option<Vec<u8>> {
        let e = self.entries.remove(key)?;
        self.used -= e.bytes.len();
        self.recency.remove(&e.seq);
        Some(e.bytes)
    }

    /// Drop every entry (budget and lifetime stats keep their values).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
        self.used = 0;
    }

    fn evict_to_budget(&mut self) {
        while self.used > self.budget {
            let Some((_, key)) = self.recency.pop_first() else {
                // Unreachable by accounting (used > 0 implies entries
                // exist), but a defensive break beats a panic in a cache.
                break;
            };
            if let Some(e) = self.entries.remove(&key) {
                self.used -= e.bytes.len();
                self.stats.evictions += 1;
                self.stats.evicted_bytes += e.bytes.len() as u64;
            }
        }
    }
}

/// Iteration-order readahead for sequential replay.
///
/// Store keys embed the iteration as their second-to-last `/`-separated
/// segment (`c/000100/000042` chunks, `f/run/000300/0003` frames).
/// Sequential replay walks the recorded iteration list in order, so after
/// reading a key the *next* key is perfectly predictable: same prefix and
/// tail, next iteration. [`Readahead::next_key`] computes it;
/// [`CachedBackend`] prefetches it.
#[derive(Debug, Clone)]
pub struct Readahead {
    /// The dataset's iterations in replay order (strictly increasing, as
    /// recorded in the metadata).
    iterations: Vec<u64>,
}

impl Readahead {
    pub fn new(iterations: Vec<u64>) -> Self {
        Self { iterations }
    }

    /// The key sequential replay will ask for after `key`: the same key
    /// with the iteration segment advanced to the next recorded iteration
    /// (zero-padding preserved). `None` when `key` has no iteration
    /// segment, the iteration is not in the recorded set, or it is the
    /// last one.
    pub fn next_key(&self, key: &str) -> Option<String> {
        let segments: Vec<&str> = key.split('/').collect();
        if segments.len() < 2 {
            return None;
        }
        let it_pos = segments.len() - 2;
        let it_seg = segments[it_pos];
        if it_seg.is_empty() || !it_seg.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let it: u64 = it_seg.parse().ok()?;
        let idx = self.iterations.binary_search(&it).ok()?;
        let next = *self.iterations.get(idx + 1)?;
        let advanced = format!("{next:0width$}", width = it_seg.len());
        let mut out = segments;
        out[it_pos] = &advanced;
        Some(out.join("/"))
    }
}

/// A [`StoreBackend`] adapter layering a shared [`ChunkCache`] (and an
/// optional [`Readahead`]) over any backend.
///
/// * `get` answers from the cache when it can; a miss reads through,
///   caches the value, and — with readahead configured — prefetches the
///   next iteration's key. A hit on a prefetched entry *chains* the
///   prefetch, so a sequential sweep stays one iteration ahead.
/// * `put` writes through to the inner backend first, then refreshes the
///   cache, so re-writing a key through the adapter never leaves a stale
///   entry (and re-charges the byte accounting if the size changed).
/// * `get_range` serves slices out of a cached full value (the bounds
///   arithmetic matches the backend's exactly); otherwise it passes
///   through without caching — partial data is never promoted to a whole
///   value.
///
/// The cache sits behind a `Mutex` because backend reads take `&self`
/// from concurrent rank threads. Returned bytes are always exactly the
/// inner backend's, whatever the interleaving; under concurrency the
/// *stats* (and eviction victims, when the budget is tight) can depend on
/// thread timing, so they are diagnostics, not replay state.
pub struct CachedBackend<B> {
    inner: B,
    cache: Mutex<ChunkCache<String>>,
    readahead: Option<Readahead>,
}

impl<B: StoreBackend> CachedBackend<B> {
    /// Wrap `inner` with a cache of `budget_bytes` (0 = cache nothing).
    pub fn new(inner: B, budget_bytes: usize) -> Self {
        Self {
            inner,
            cache: Mutex::new(ChunkCache::new(budget_bytes)),
            readahead: None,
        }
    }

    /// Enable iteration-order prefetch.
    pub fn with_readahead(mut self, readahead: Readahead) -> Self {
        self.readahead = Some(readahead);
        self
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Snapshot of the cache's lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats()
    }

    /// Entries currently cached.
    pub fn cached_entries(&self) -> usize {
        self.lock().len()
    }

    /// Drop every cached entry (stats keep counting) — e.g. to measure a
    /// cold read on a warm process.
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Lock the cache. A poisoned lock means a panic unwound mid-update
    /// (only possible through a library bug); the entries could be torn,
    /// but dropping them restores every invariant — a cache is always
    /// allowed to forget.
    fn lock(&self) -> MutexGuard<'_, ChunkCache<String>> {
        self.cache.lock().unwrap_or_else(|poisoned| {
            let mut guard = poisoned.into_inner();
            guard.clear();
            guard
        })
    }

    /// Read the predicted next key through the inner backend into the
    /// cache. Absent keys are fine (the last iteration has no successor
    /// on disk); real read errors surface on the eventual demand read.
    fn prefetch_after(&self, key: &str) {
        let Some(readahead) = &self.readahead else {
            return;
        };
        let Some(next) = readahead.next_key(key) else {
            return;
        };
        if self.lock().contains(&next) {
            return;
        }
        // The inner read happens outside the lock: prefetch I/O must not
        // serialize concurrent demand reads.
        let Ok(bytes) = self.inner.get(&next) else {
            return;
        };
        self.lock().put_prefetched(next, bytes);
    }
}

impl<B: StoreBackend> StoreBackend for CachedBackend<B> {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), StoreError> {
        // Write-through: the backend is durable truth; the cache refresh
        // (with its size re-accounting) only happens once that succeeded.
        self.inner.put(key, bytes)?;
        self.lock().put(key.to_owned(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        let owned = key.to_owned();
        {
            let mut cache = self.lock();
            let used_before = cache.stats().prefetch_used;
            if let Some(bytes) = cache.get(&owned) {
                let bytes = bytes.to_vec();
                // Consuming a prefetched entry means the sequential sweep
                // advanced: chain the readahead one key further.
                let chain = cache.stats().prefetch_used > used_before;
                drop(cache);
                if chain {
                    self.prefetch_after(key);
                }
                return Ok(bytes);
            }
        }
        let bytes = self.inner.get(key)?;
        self.lock().put(owned, bytes.clone());
        self.prefetch_after(key);
        Ok(bytes)
    }

    fn contains(&self, key: &str) -> Result<bool, StoreError> {
        if self.lock().contains(&key.to_owned()) {
            return Ok(true);
        }
        self.inner.contains(key)
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        {
            let mut cache = self.lock();
            if let Some(bytes) = cache.get(&key.to_owned()) {
                // Same bounds arithmetic as the in-memory backends, so a
                // cached hit errors exactly like the inner backend would.
                return slice_range(bytes, key, offset, len);
            }
        }
        self.inner.get_range(key, offset, len)
    }

    fn size(&self, key: &str) -> Result<u64, StoreError> {
        if let Some(bytes) = self.lock().peek(&key.to_owned()) {
            return Ok(bytes.len() as u64);
        }
        self.inner.size(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStore;
    use std::cell::Cell;
    use std::cmp::Ordering;
    use std::rc::Rc;

    #[test]
    fn byte_budget_evicts_in_lru_order() {
        let mut cache: ChunkCache<u32> = ChunkCache::new(10);
        cache.put(1, vec![0; 4]);
        cache.put(2, vec![0; 4]);
        assert!(cache.get(&1).is_some()); // 1 is now hottest
        cache.put(3, vec![0; 4]); // 12 > 10: evicts 2, the coldest
        assert!(cache.get(&2).is_none());
        assert!(cache.get(&1).is_some());
        assert!(cache.get(&3).is_some());
        assert_eq!(cache.used_bytes(), 8);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (3, 1));
        assert_eq!((s.evictions, s.evicted_bytes), (1, 4));
    }

    /// The boundary cases of byte accounting: exactly-at-budget fits, one
    /// byte over evicts, and the hit/miss counters track each outcome.
    #[test]
    fn eviction_order_and_stats_at_the_byte_boundary() {
        let mut cache: ChunkCache<&str> = ChunkCache::new(8);
        cache.put("a", vec![1; 3]);
        cache.put("b", vec![2; 5]); // 8 used: exactly at budget, no eviction
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.len(), 2);

        cache.put("c", vec![3; 1]); // 9 > 8: "a" (LRU) goes first
        assert!(cache.get(&"a").is_none());
        assert_eq!(cache.get(&"b"), Some(&[2u8; 5][..]));
        assert_eq!(cache.used_bytes(), 6);

        // "c" is now LRU ("b" was just touched); 6 + 5 = 11 evicts "c",
        // still 9 > 8, so "b" goes too: multi-eviction in strict LRU order.
        cache.put("d", vec![4; 5]);
        assert!(cache.get(&"c").is_none());
        assert!(cache.get(&"b").is_none());
        assert_eq!(cache.get(&"d"), Some(&[4u8; 5][..]));
        let s = cache.stats();
        assert_eq!(s.evictions, 3);
        assert_eq!(s.evicted_bytes, 3 + 1 + 5);
        assert_eq!((s.hits, s.misses), (2, 3));
    }

    /// The oversized-single-item rule: an item larger than the whole
    /// budget bypasses the cache instead of evicting everything.
    #[test]
    fn oversized_item_bypasses_instead_of_evicting_everything() {
        let mut cache: ChunkCache<&str> = ChunkCache::new(8);
        cache.put("a", vec![0; 4]);
        cache.put("b", vec![0; 4]);
        cache.put("huge", vec![0; 9]); // > budget: rejected
        assert_eq!(cache.len(), 2, "working set must survive");
        assert!(cache.get(&"huge").is_none());
        assert!(cache.get(&"a").is_some());
        assert!(cache.get(&"b").is_some());
        assert_eq!(cache.stats().oversized_rejects, 1);
        assert_eq!(cache.stats().evictions, 0);

        // An oversized re-put of an existing key drops the stale entry
        // rather than serving old bytes for a redefined key.
        cache.put("a", vec![0; 100]);
        assert!(cache.get(&"a").is_none());
        assert_eq!(cache.used_bytes(), 4);
    }

    /// Regression (ISSUE 8): re-put of an existing key with a
    /// different-sized payload must re-charge the byte accounting — and
    /// trigger eviction if the budget is now exceeded. The old FrameCache
    /// swapped payloads without touching any accounting.
    #[test]
    fn reput_with_different_size_recharges_and_evicts() {
        let mut cache: ChunkCache<&str> = ChunkCache::new(10);
        cache.put("a", vec![0; 2]);
        cache.put("b", vec![0; 2]);
        cache.put("c", vec![0; 2]);
        assert_eq!(cache.used_bytes(), 6);

        // Shrink: budget is released.
        cache.put("a", vec![0; 1]);
        assert_eq!(cache.used_bytes(), 5);

        // Grow: 5 - 1 + 7 = 11 > 10, so the LRU survivor ("b") is evicted;
        // the refreshed key itself is hottest and must survive.
        cache.put("a", vec![0; 7]);
        assert_eq!(cache.used_bytes(), 9); // c(2) + a(7)
        assert!(cache.get(&"b").is_none());
        assert_eq!(cache.get(&"a"), Some(&[0u8; 7][..]));
        assert!(cache.get(&"c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_budget_is_the_uncached_baseline() {
        let mut cache: ChunkCache<u32> = ChunkCache::new(0);
        cache.put(1, vec![1]);
        cache.put(2, Vec::new()); // even empty payloads stay out
        assert!(cache.is_empty());
        assert!(cache.get(&1).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
    }

    /// A key whose `Ord` counts comparisons: the only work a B-tree does
    /// per key is compare, so total comparisons measure the cache's
    /// recency arithmetic directly — wall-clock never enters.
    #[derive(Clone)]
    struct CountedKey {
        id: u64,
        cmps: Rc<Cell<u64>>,
    }

    impl PartialEq for CountedKey {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for CountedKey {}
    impl PartialOrd for CountedKey {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for CountedKey {
        fn cmp(&self, other: &Self) -> Ordering {
            self.cmps.set(self.cmps.get() + 1);
            self.id.cmp(&other.id)
        }
    }

    /// Regression (ISSUE 8): `touch` was an O(capacity) `VecDeque`
    /// position scan on every hit. With 10k entries and 100k touches a
    /// scan costs ~10⁹ key comparisons; the sequence-numbered index costs
    /// ~2 B-tree lookups per touch. Budget-asserted by *operation
    /// counting* (comparisons), not wall-clock.
    #[test]
    fn ten_thousand_entries_sustain_100k_touches_without_quadratic_blowup() {
        const ENTRIES: u64 = 10_000;
        const TOUCHES: u64 = 100_000;
        let cmps = Rc::new(Cell::new(0u64));
        let key = |id: u64| CountedKey {
            id,
            cmps: Rc::clone(&cmps),
        };
        let mut cache: ChunkCache<CountedKey> = ChunkCache::new(ENTRIES as usize);
        for id in 0..ENTRIES {
            cache.put(key(id), vec![0]);
        }
        assert_eq!(cache.len(), ENTRIES as usize);

        cmps.set(0);
        for i in 0..TOUCHES {
            // A worst-ish access pattern for an LRU scan: always touch a
            // key that is currently cold.
            assert!(cache.get(&key((i * 7919) % ENTRIES)).is_some());
        }
        let total = cmps.get();
        // Each touch costs ~2 entry-map lookups; a 10k-entry B-tree lookup
        // is ≲ 60 comparisons (11-wide nodes, depth ≤ 5), so ~12M total.
        // The quadratic scan would need ~10⁹. Assert an order-of-magnitude
        // safety margin below that.
        let budget = TOUCHES * 2 * 60;
        assert!(
            total <= budget,
            "recency update is not O(log n): {total} comparisons for \
             {TOUCHES} touches over {ENTRIES} entries (budget {budget})"
        );
    }

    #[test]
    fn prefetch_counters_distinguish_used_from_wasted() {
        let mut cache: ChunkCache<&str> = ChunkCache::new(100);
        cache.put_prefetched("used", vec![1]);
        cache.put_prefetched("wasted", vec![2]);
        assert!(cache.get(&"used").is_some());
        assert!(cache.get(&"used").is_some()); // counted once, not twice
        let s = cache.stats();
        assert_eq!((s.prefetched, s.prefetch_used), (2, 1));
    }

    #[test]
    fn readahead_predicts_the_next_iteration_key() {
        let ra = Readahead::new(vec![100, 300, 700]);
        assert_eq!(
            ra.next_key("c/000100/000042").as_deref(),
            Some("c/000300/000042")
        );
        assert_eq!(
            ra.next_key("f/run/000300/0003").as_deref(),
            Some("f/run/000700/0003")
        );
        // Last iteration, unknown iteration, and non-iteration keys.
        assert_eq!(ra.next_key("c/000700/000001"), None);
        assert_eq!(ra.next_key("c/000200/000001"), None);
        assert_eq!(ra.next_key("meta.json"), None);
        assert_eq!(ra.next_key("f/run-7/manifest.json"), None);
    }

    #[test]
    fn cached_backend_reads_through_and_reports_stats() {
        let inner = MemStore::new();
        inner.put("c/000100/000001", b"alpha").unwrap();
        let cached = CachedBackend::new(inner, 1 << 10);
        assert_eq!(cached.get("c/000100/000001").unwrap(), b"alpha");
        assert_eq!(cached.get("c/000100/000001").unwrap(), b"alpha");
        let s = cached.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        // Range reads served from the cached full value, bounds checked.
        assert_eq!(cached.get_range("c/000100/000001", 1, 3).unwrap(), b"lph");
        assert!(matches!(
            cached.get_range("c/000100/000001", 3, 9),
            Err(StoreError::Range { .. })
        ));
        assert_eq!(cached.size("c/000100/000001").unwrap(), 5);
        assert!(cached.contains("c/000100/000001").unwrap());
        assert!(matches!(
            cached.get("c/000100/000099"),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn cached_backend_write_through_keeps_cache_coherent() {
        let cached = CachedBackend::new(MemStore::new(), 1 << 10);
        cached.put("k", b"one").unwrap();
        assert_eq!(cached.get("k").unwrap(), b"one");
        cached.put("k", b"twotwo").unwrap();
        // The refreshed value is served (from cache — hit) and the inner
        // backend agrees.
        assert_eq!(cached.get("k").unwrap(), b"twotwo");
        assert_eq!(cached.inner().get("k").unwrap(), b"twotwo");
        assert_eq!(cached.stats().hits, 2);
    }

    #[test]
    fn cached_backend_prefetches_and_chains_on_sequential_reads() {
        let inner = MemStore::new();
        for it in [100u64, 200, 300] {
            inner
                .put(&format!("c/{it:06}/000007"), &[it as u8])
                .unwrap();
        }
        let cached =
            CachedBackend::new(inner, 1 << 10).with_readahead(Readahead::new(vec![100, 200, 300]));
        // Miss on the first iteration prefetches the second; the hit on
        // the second chains the prefetch to the third.
        assert_eq!(cached.get("c/000100/000007").unwrap(), &[100]);
        assert_eq!(cached.get("c/000200/000007").unwrap(), &[200]);
        assert_eq!(cached.get("c/000300/000007").unwrap(), &[44]); // 300 % 256
        let s = cached.stats();
        assert_eq!(s.misses, 1, "only the first read touches the backend");
        assert_eq!(s.prefetched, 2);
        assert_eq!(s.prefetch_used, 2);
    }

    #[test]
    fn clear_resets_contents_but_not_counters() {
        let cached = CachedBackend::new(MemStore::new(), 1 << 10);
        cached.put("k", b"v").unwrap();
        assert_eq!(cached.cached_entries(), 1);
        cached.clear();
        assert_eq!(cached.cached_entries(), 0);
        assert_eq!(cached.get("k").unwrap(), b"v"); // reads through again
        assert_eq!(cached.stats().misses, 1);
    }
}

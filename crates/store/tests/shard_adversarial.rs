//! Adversarial shard-container tests — the mirror of
//! `compress/tests/adversarial.rs` for the shard layer.
//!
//! A shard file that comes back from disk damaged must surface as a
//! typed [`StoreError`], never a panic and never an unbounded
//! allocation. Four families, all deterministic (the bit-flip sweep is
//! driven by the in-tree seeded PRNG, so failures replay exactly):
//!
//! 1. **Truncations** — every prefix of a valid container fails to open;
//! 2. **Bit flips** — any single-bit corruption of the index/footer
//!    region either fails to open or opens into reads that return data
//!    or errors, never control-flow damage;
//! 3. **Hand-forged indexes** — out-of-bounds, overlapping, duplicate,
//!    empty-key and non-UTF-8 entries are all rejected at open;
//! 4. **Degenerate containers** — zero-entry shards, sub-footer-size
//!    files, wrong magic or version.

use apc_par::SplitMix64;
use apc_store::{MemStore, ShardReader, ShardWriter, ShardedStore, StoreBackend, StoreError};

const SHARD_KEY: &str = "c/000000/s000000";

/// A small valid container: `n` entries of varied sizes (including an
/// empty payload), plus the list of its keys.
fn valid_shard(n: u32, rng: &mut SplitMix64) -> (Vec<u8>, Vec<String>) {
    let mut writer = ShardWriter::new();
    let mut keys = Vec::new();
    for id in 0..n {
        let key = format!("c/000000/{id:06}");
        let len = if id == 1 { 0 } else { rng.below(200) + 1 };
        let payload: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        writer.append(&key, &payload).unwrap();
        keys.push(key);
    }
    (writer.finish().unwrap(), keys)
}

fn open_bytes(bytes: &[u8]) -> Result<(), StoreError> {
    let mem = MemStore::new();
    mem.put(SHARD_KEY, bytes).unwrap();
    ShardReader::open(&mem, SHARD_KEY).map(|_| ())
}

/// Forge a container from raw index entries, bypassing the writer's
/// validation — how on-disk damage that a writer would never produce
/// gets into a test.
fn forged(payload: &[u8], entries: &[(&[u8], u64, u64)]) -> Vec<u8> {
    let mut out = payload.to_vec();
    let index_start = out.len();
    for (key, offset, len) in entries {
        out.extend_from_slice(&(key.len() as u16).to_le_bytes());
        out.extend_from_slice(key);
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
    }
    let index_len = (out.len() - index_start) as u64;
    out.extend_from_slice(&index_len.to_le_bytes());
    out.extend_from_slice(b"APCSHRD");
    out.push(1);
    out
}

#[test]
fn every_truncation_is_a_typed_error() {
    let mut rng = SplitMix64::new(0x5A01);
    let (shard, _) = valid_shard(8, &mut rng);
    for len in 0..shard.len() {
        let err = open_bytes(&shard[..len]).expect_err("truncated shard must not open");
        assert!(
            matches!(err, StoreError::Shard(_) | StoreError::Range { .. }),
            "prefix of {len} bytes gave unexpected error kind: {err}"
        );
    }
    // The untruncated container still opens — the loop above proved
    // something about corruption, not about the fixture.
    open_bytes(&shard).unwrap();
}

#[test]
fn every_index_and_footer_bit_flip_is_survivable() {
    let mut rng = SplitMix64::new(0x5A02);
    let (shard, keys) = valid_shard(6, &mut rng);
    // Find the payload/index boundary from the intact footer.
    let index_len =
        u64::from_le_bytes(shard[shard.len() - 16..shard.len() - 8].try_into().unwrap()) as usize;
    let index_start = shard.len() - 16 - index_len;
    for byte in index_start..shard.len() {
        for bit in 0..8u8 {
            let mut copy = shard.clone();
            copy[byte] ^= 1 << bit;
            let mem = MemStore::new();
            mem.put(SHARD_KEY, &copy).unwrap();
            // Either the open rejects the damage, or the damage moved
            // entries around within bounds — then every read must come
            // back as data or a typed error. Panics fail the test.
            if let Ok(reader) = ShardReader::open(&mem, SHARD_KEY) {
                for key in &keys {
                    let _ = reader.read_range(key);
                }
            }
        }
    }
}

#[test]
fn out_of_bounds_entries_are_rejected() {
    let payload = [7u8; 64];
    for (offset, len) in [
        (0u64, 65u64),     // past the payload region
        (64, 1),           // starts exactly at the boundary
        (u64::MAX, 1),     // offset + len overflows
        (u64::MAX - 1, 2), // overflow to exactly 0
        (0, u64::MAX),     // absurd length must not allocate
    ] {
        let bytes = forged(&payload, &[(b"k/000000", offset, len)]);
        assert!(
            matches!(open_bytes(&bytes), Err(StoreError::Shard(_))),
            "entry {offset}+{len} accepted"
        );
    }
}

#[test]
fn overlapping_entries_are_rejected() {
    let payload = [7u8; 64];
    let bytes = forged(&payload, &[(b"k/000000", 0, 40), (b"k/000001", 39, 10)]);
    assert!(matches!(open_bytes(&bytes), Err(StoreError::Shard(_))));
    // Adjacent (touching, not overlapping) entries are fine.
    let bytes = forged(&payload, &[(b"k/000000", 0, 40), (b"k/000001", 40, 10)]);
    open_bytes(&bytes).unwrap();
}

#[test]
fn duplicate_empty_and_non_utf8_keys_are_rejected() {
    let payload = [7u8; 64];
    for entries in [
        vec![
            (b"k/000000".as_slice(), 0u64, 8u64),
            (b"k/000000".as_slice(), 8, 8),
        ],
        vec![(b"".as_slice(), 0, 8)],
        vec![(b"\xFF\xFE".as_slice(), 0, 8)],
    ] {
        let bytes = forged(&payload, &entries);
        assert!(
            matches!(open_bytes(&bytes), Err(StoreError::Shard(_))),
            "forged key set accepted: {entries:?}"
        );
    }
}

#[test]
fn zero_entry_shards_are_rejected_everywhere() {
    // The writer refuses to produce one…
    assert!(matches!(
        ShardWriter::new().finish(),
        Err(StoreError::Shard(_))
    ));
    // …and the reader refuses a forged one (16-byte file: empty payload,
    // empty index, valid magic).
    let bytes = forged(&[], &[]);
    assert_eq!(bytes.len(), 16);
    assert!(matches!(open_bytes(&bytes), Err(StoreError::Shard(_))));
}

#[test]
fn sub_footer_files_and_bad_magic_are_rejected() {
    for n in 0..16 {
        let bytes = vec![0u8; n];
        assert!(
            matches!(open_bytes(&bytes), Err(StoreError::Shard(_))),
            "{n}-byte file accepted"
        );
    }
    let mut rng = SplitMix64::new(0x5A03);
    let (mut shard, _) = valid_shard(3, &mut rng);
    let magic_at = shard.len() - 8;
    shard[magic_at] = b'Z';
    assert!(matches!(open_bytes(&shard), Err(StoreError::Shard(_))));
    shard[magic_at] = b'A'; // restore magic, damage the version
    *shard.last_mut().unwrap() = 9;
    assert!(matches!(open_bytes(&shard), Err(StoreError::Shard(_))));
}

/// Corruption surfaces identically through the `ShardedStore` adapter —
/// the layer the pipeline actually reads through.
#[test]
fn sharded_store_reads_of_corrupt_shards_are_typed_errors() {
    let mut rng = SplitMix64::new(0x5A04);
    let (shard, keys) = valid_shard(4, &mut rng);
    let mem = MemStore::new();
    // Damage the footer's index_len field.
    let mut copy = shard;
    let at = copy.len() - 12;
    copy[at] ^= 0xFF;
    mem.put(SHARD_KEY, &copy).unwrap();
    let store = ShardedStore::new(mem, 4);
    for key in &keys {
        assert!(
            matches!(store.get(key), Err(StoreError::Shard(_))),
            "corrupt shard served {key}"
        );
        assert!(matches!(store.contains(key), Err(StoreError::Shard(_))));
    }
}

//! Partial-read guarantees of the shard container, pinned with an
//! instrumented backend: reading one chunk out of a shard must cost a
//! few small byte-range reads, never a full-shard (or full-file) read.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use apc_store::{MemStore, ShardReader, ShardWriter, ShardedStore, StoreBackend, StoreError};

/// A [`MemStore`] wrapper that counts how each byte reaches the caller:
/// whole-value `get`s versus `get_range` calls and the bytes they return.
#[derive(Default)]
struct CountingBackend {
    inner: MemStore,
    full_gets: AtomicUsize,
    range_reads: AtomicUsize,
    range_bytes: AtomicUsize,
}

impl CountingBackend {
    fn reset(&self) {
        self.full_gets.store(0, Ordering::SeqCst);
        self.range_reads.store(0, Ordering::SeqCst);
        self.range_bytes.store(0, Ordering::SeqCst);
    }

    fn full_gets(&self) -> usize {
        self.full_gets.load(Ordering::SeqCst)
    }

    fn range_reads(&self) -> usize {
        self.range_reads.load(Ordering::SeqCst)
    }

    fn range_bytes(&self) -> usize {
        self.range_bytes.load(Ordering::SeqCst)
    }
}

impl StoreBackend for CountingBackend {
    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.inner.put(key, bytes)
    }

    fn get(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        self.full_gets.fetch_add(1, Ordering::SeqCst);
        self.inner.get(key)
    }

    fn contains(&self, key: &str) -> Result<bool, StoreError> {
        self.inner.contains(key)
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        self.range_reads.fetch_add(1, Ordering::SeqCst);
        self.range_bytes.fetch_add(len as usize, Ordering::SeqCst);
        self.inner.get_range(key, offset, len)
    }

    fn size(&self, key: &str) -> Result<u64, StoreError> {
        self.inner.size(key)
    }
}

/// 1 KiB of deterministic per-chunk filler.
fn chunk_payload(id: u32) -> Vec<u8> {
    (0..1024u32)
        .map(|i| (i.wrapping_mul(31).wrapping_add(id * 7) & 0xFF) as u8)
        .collect()
}

/// The ISSUE's acceptance criterion: a shard holding ≥ 64 chunks serves a
/// single-chunk read through `get_range` without reading the full shard.
#[test]
fn single_chunk_read_from_a_64_chunk_shard_is_partial() {
    const CHUNKS: u32 = 64;
    let counting = Arc::new(CountingBackend::default());
    let writer_store = ShardedStore::new(Arc::clone(&counting), CHUNKS as usize);
    for id in 0..CHUNKS {
        writer_store
            .put(&format!("c/000100/{id:06}"), &chunk_payload(id))
            .unwrap();
    }
    drop(writer_store); // group sealed at CHUNKS puts; nothing pending
    let shard_size = counting.size("c/000100/s000000").unwrap() as usize;
    assert!(
        shard_size > CHUNKS as usize * 1024,
        "all {CHUNKS} chunks live in one container"
    );

    // A fresh adapter (cold index cache) reads exactly one chunk.
    let reader_store = ShardedStore::new(Arc::clone(&counting), CHUNKS as usize);
    counting.reset();
    let got = reader_store.get("c/000100/000037").unwrap();
    assert_eq!(got, chunk_payload(37));

    // No whole-shard read: zero full `get`s, three range reads (trailer,
    // index, payload) whose bytes stay far below the shard size.
    assert_eq!(counting.full_gets(), 0, "no full-value read allowed");
    assert_eq!(counting.range_reads(), 3, "trailer + index + payload");
    assert!(
        counting.range_bytes() < shard_size / 2,
        "read {} of {} shard bytes — not a partial read",
        counting.range_bytes(),
        shard_size
    );

    // With the index now cached, the next chunk costs exactly one range
    // read of exactly the chunk's bytes.
    counting.reset();
    let got = reader_store.get("c/000100/000000").unwrap();
    assert_eq!(got, chunk_payload(0));
    assert_eq!(counting.full_gets(), 0);
    assert_eq!(counting.range_reads(), 1);
    assert_eq!(counting.range_bytes(), 1024);
}

/// Same accounting at the `ShardReader` layer: open = two range reads
/// (trailer, index), each `read_range` = one more.
#[test]
fn shard_reader_io_is_exactly_footer_index_payload() {
    let counting = CountingBackend::default();
    let mut w = ShardWriter::new();
    for id in 0..100u32 {
        w.append(&format!("k/{id:06}"), &chunk_payload(id)).unwrap();
    }
    w.write_to(&counting, "k/s000000").unwrap();
    counting.reset();

    let reader = ShardReader::open(&counting, "k/s000000").unwrap();
    assert_eq!(reader.len(), 100);
    assert_eq!(counting.range_reads(), 2, "open reads trailer + index");
    assert_eq!(counting.full_gets(), 0);

    for id in [0u32, 50, 99] {
        counting.reset();
        assert_eq!(
            reader.read_range(&format!("k/{id:06}")).unwrap(),
            chunk_payload(id)
        );
        assert_eq!(counting.range_reads(), 1);
        assert_eq!(counting.range_bytes(), 1024);
        assert_eq!(counting.full_gets(), 0);
    }
}

/// The `get_range` default implementation (via `get`) and the real
/// partial-I/O overrides agree byte for byte, Dir and Mem alike.
#[test]
fn dir_and_mem_range_reads_agree() {
    let root = std::env::temp_dir()
        .join("apc_store_sharding_tests")
        .join("range-agree");
    let _ = std::fs::remove_dir_all(&root);
    let dir = apc_store::DirStore::create(&root).unwrap();
    let mem = MemStore::new();
    let payload = chunk_payload(9);
    dir.put("v/000001", &payload).unwrap();
    mem.put("v/000001", &payload).unwrap();
    for (offset, len) in [(0u64, 1024u64), (0, 0), (1023, 1), (100, 512)] {
        let d = dir.get_range("v/000001", offset, len).unwrap();
        let m = mem.get_range("v/000001", offset, len).unwrap();
        assert_eq!(d, m, "{offset}+{len}");
        assert_eq!(d, payload[offset as usize..(offset + len) as usize]);
    }
    assert_eq!(dir.size("v/000001").unwrap(), 1024);
    assert_eq!(mem.size("v/000001").unwrap(), 1024);
    for backend in [&dir as &dyn StoreBackend, &mem] {
        assert!(matches!(
            backend.get_range("v/000001", 1020, 5),
            Err(StoreError::Range { .. })
        ));
        assert!(matches!(
            backend.get_range("v/000001", u64::MAX, 2),
            Err(StoreError::Range { .. })
        ));
        assert!(matches!(
            backend.get_range("v/missing", 0, 1),
            Err(StoreError::NotFound(_))
        ));
        assert!(matches!(
            backend.size("v/missing"),
            Err(StoreError::NotFound(_))
        ));
    }
}

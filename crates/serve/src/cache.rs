//! The hot-frame cache a serving stager answers from — since PR 8 a typed
//! alias of the generalized, byte-bounded chunk cache in
//! [`apc_store::cache`] (one LRU implementation shared by every reader in
//! the workspace).
//!
//! A stager inserts every frame it renders (the hot path: `Latest`
//! requests always hit), and requests for older frames fall back to a
//! store read whose virtual cost the serving executor charges — so the
//! cache hit rate is directly a virtual-latency lever, which is what the
//! fig13 experiment measures. Capacity is a *byte budget*, not an entry
//! count, so a run with large frames stays memory-bounded; recency is
//! pure sequence-number arithmetic (`O(log n)`, no wall-clock), so
//! serving runs replay deterministically.

pub use apc_store::cache::{CacheStats, ChunkCache};

/// Cache key: `(iteration, stager)` — the frame coordinate within a run.
pub type FrameKey = (u64, u32);

/// A byte-bounded LRU cache of encoded frame streams
/// ([`apc_store::cache::ChunkCache`] keyed by [`FrameKey`]).
pub type FrameCache = ChunkCache<FrameKey>;

#[cfg(test)]
mod tests {
    use super::*;

    // The pre-PR-8 FrameCache semantics, preserved under byte accounting:
    // with one-byte frames, a budget of N bytes behaves exactly like the
    // old N-entry capacity.

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = FrameCache::new(2);
        cache.put((1, 0), vec![1]);
        cache.put((2, 0), vec![2]);
        assert_eq!(cache.get(&(1, 0)), Some(&[1u8][..])); // 1 is now hottest
        cache.put((3, 0), vec![3]); // evicts 2
        assert_eq!(cache.get(&(2, 0)), None);
        assert_eq!(cache.get(&(1, 0)), Some(&[1u8][..]));
        assert_eq!(cache.get(&(3, 0)), Some(&[3u8][..]));
        assert_eq!((cache.hits(), cache.misses()), (3, 1));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let mut cache = FrameCache::new(2);
        cache.put((1, 0), vec![1]);
        cache.put((2, 0), vec![2]);
        cache.put((1, 0), vec![9]); // refresh, 2 becomes coldest
        cache.put((3, 0), vec![3]); // evicts 2
        assert_eq!(cache.get(&(1, 0)), Some(&[9u8][..]));
        assert_eq!(cache.get(&(2, 0)), None);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_budget_misses_everything() {
        let mut cache = FrameCache::new(0);
        cache.put((1, 0), vec![1]);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&(1, 0)), None);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
    }

    #[test]
    fn frames_are_charged_by_encoded_size() {
        let mut cache = FrameCache::new(100);
        cache.put((1, 0), vec![0; 60]);
        cache.put((2, 0), vec![0; 60]); // 120 > 100: (1,0) evicted
        assert_eq!(cache.get(&(1, 0)), None);
        assert!(cache.get(&(2, 0)).is_some());
        assert_eq!(cache.used_bytes(), 60);
        assert_eq!(cache.stats().evicted_bytes, 60);
    }
}

//! The bounded LRU hot-frame cache a serving stager answers from.
//!
//! A stager inserts every frame it renders (the hot path: `Latest`
//! requests always hit), and requests for older frames fall back to a
//! store read whose virtual cost the serving executor charges — so the
//! cache hit rate is directly a virtual-latency lever, which is what the
//! fig13 experiment measures. Pure map/deque arithmetic: eviction order
//! depends only on the access sequence, never on wall-clock, so serving
//! runs replay deterministically.

use std::collections::{BTreeMap, VecDeque};

/// Cache key: `(iteration, stager)` — the frame coordinate within a run.
pub type FrameKey = (u64, u32);

/// A bounded least-recently-used cache of encoded frame streams.
#[derive(Debug)]
pub struct FrameCache {
    capacity: usize,
    map: BTreeMap<FrameKey, Vec<u8>>,
    /// Keys from least- to most-recently used.
    order: VecDeque<FrameKey>,
    hits: usize,
    misses: usize,
}

impl FrameCache {
    /// A cache holding at most `capacity` frames. Zero capacity is a
    /// legal degenerate cache that misses everything (used to measure the
    /// uncached baseline).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: BTreeMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn hits(&self) -> usize {
        self.hits
    }

    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Look up a frame, counting the hit or miss and refreshing recency
    /// on a hit.
    pub fn get(&mut self, key: FrameKey) -> Option<&[u8]> {
        if self.map.contains_key(&key) {
            self.hits += 1;
            self.touch(key);
            self.map.get(&key).map(Vec::as_slice)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Insert (or refresh) a frame, evicting the least-recently-used
    /// entry when full. Does not count as a hit or miss.
    pub fn put(&mut self, key: FrameKey, stream: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key, stream).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.capacity {
                // apc-lint: allow(unwrap-in-lib): order.len() > capacity >= 1 on this branch, so the deque is non-empty
                let evicted = self.order.pop_front().expect("order tracks map");
                self.map.remove(&evicted);
            }
        } else {
            self.touch(key);
        }
    }

    fn touch(&mut self, key: FrameKey) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            self.order.push_back(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = FrameCache::new(2);
        cache.put((1, 0), vec![1]);
        cache.put((2, 0), vec![2]);
        assert_eq!(cache.get((1, 0)), Some(&[1u8][..])); // 1 is now hottest
        cache.put((3, 0), vec![3]); // evicts 2
        assert_eq!(cache.get((2, 0)), None);
        assert_eq!(cache.get((1, 0)), Some(&[1u8][..]));
        assert_eq!(cache.get((3, 0)), Some(&[3u8][..]));
        assert_eq!((cache.hits(), cache.misses()), (3, 1));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let mut cache = FrameCache::new(2);
        cache.put((1, 0), vec![1]);
        cache.put((2, 0), vec![2]);
        cache.put((1, 0), vec![9]); // refresh, 2 becomes coldest
        cache.put((3, 0), vec![3]); // evicts 2
        assert_eq!(cache.get((1, 0)), Some(&[9u8][..]));
        assert_eq!(cache.get((2, 0)), None);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_misses_everything() {
        let mut cache = FrameCache::new(0);
        cache.put((1, 0), vec![1]);
        assert!(cache.is_empty());
        assert_eq!(cache.get((1, 0)), None);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
    }
}

//! Frame persistence: the on-store layout and its handles.
//!
//! One serving run occupies one `run_id` namespace inside any
//! [`StoreBackend`]:
//!
//! ```text
//! f/<run_id>/manifest.json          run-level metadata (RunManifest)
//! f/<run_id>/<iteration>/<stager>   one frame stream per rendered frame
//! ```
//!
//! Frame keys are pure functions of `(run_id, iteration, stager)`, so
//! concurrent stagers write disjoint keys with no coordination, and any
//! reader that knows the manifest can address every frame of the run.
//! `run_id` namespacing is what lets several runs (or several datasets —
//! the multi-dataset ROADMAP item) share one backend.

use std::sync::Arc;

use apc_store::json::{parse_object, Value};
use apc_store::{CodecKind, ShardedStore, StoreBackend};

use crate::frame::Frame;
use crate::ServeError;

/// Key of the run-level manifest document.
fn manifest_key(run_id: &str) -> String {
    format!("f/{run_id}/manifest.json")
}

/// Run ids are a single path segment that must also survive the manifest's
/// JSON round trip verbatim (the strict parser has no escape sequences),
/// so the alphabet is locked down rather than blacklisted.
fn validate_run_id(run_id: &str) {
    assert!(
        !run_id.is_empty()
            && run_id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.')),
        "run id must be a non-empty single path segment of [A-Za-z0-9._-], got {run_id:?}"
    );
}

/// Key of one frame stream.
pub fn frame_key(run_id: &str, iteration: u64, stager: u32) -> String {
    format!("f/{run_id}/{iteration:06}/{stager:04}")
}

/// Run-level metadata: which frames a stored run contains and how they
/// were encoded. Written once by the run driver before the rank program
/// starts, so readers never depend on backend key listing (which the
/// `StoreBackend` trait deliberately does not offer).
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    pub run_id: String,
    /// Staging slots that render (and persist) frames.
    pub n_stagers: usize,
    /// Frame dimensions (all frames of a run share them).
    pub width: usize,
    pub height: usize,
    /// Codec the run's frames were written with (per-frame streams still
    /// self-describe; this records the writer's intent).
    pub codec: CodecKind,
    /// Simulation iterations the run renders, strictly increasing.
    pub iterations: Vec<usize>,
    /// Frame layout: `None` means one store key per frame; `Some(n)`
    /// means frames are packed `n` per shard container and readers must
    /// go through a [`ShardedStore`] wrap of the backend (see
    /// [`open_run`]).
    pub shard_chunks: Option<usize>,
}

impl RunManifest {
    /// Every frame key of the run, in replay order: manifest iteration
    /// order (numeric, the writer's), stagers within an iteration.
    ///
    /// This — not lexicographic key order — is the run's ordering
    /// contract. The zero-padding in [`frame_key`] makes *typical* keys
    /// sort correctly as strings, but it saturates (iteration 1 000 000
    /// sorts before 999 999), so readers must iterate the manifest, never
    /// a sorted key listing.
    pub fn frame_keys(&self) -> Vec<String> {
        let mut keys = Vec::with_capacity(self.iterations.len() * self.n_stagers);
        for &it in &self.iterations {
            for stager in 0..self.n_stagers {
                keys.push(frame_key(&self.run_id, it as u64, stager as u32));
            }
        }
        keys
    }
    pub fn to_json(&self) -> String {
        let iters: Vec<String> = self.iterations.iter().map(|i| i.to_string()).collect();
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"format\": \"apc-serve\",\n");
        s.push_str("  \"version\": 1,\n");
        s.push_str(&format!("  \"run_id\": \"{}\",\n", self.run_id));
        s.push_str(&format!("  \"n_stagers\": {},\n", self.n_stagers));
        s.push_str(&format!("  \"width\": {},\n", self.width));
        s.push_str(&format!("  \"height\": {},\n", self.height));
        s.push_str(&format!("  \"codec\": \"{}\",\n", self.codec.name()));
        if let Some(tol) = self.codec.tolerance() {
            s.push_str(&format!("  \"tolerance\": {tol},\n"));
        }
        if let Some(n) = self.shard_chunks {
            s.push_str(&format!("  \"shard_chunks\": {n},\n"));
        }
        s.push_str(&format!("  \"iterations\": [{}]\n", iters.join(", ")));
        s.push('}');
        s
    }

    pub fn from_json(text: &str) -> Result<Self, ServeError> {
        let fields = parse_object(text).map_err(ServeError::Corrupt)?;
        let get = |key: &str| -> Result<&Value, ServeError> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| ServeError::Corrupt(format!("manifest missing field {key:?}")))
        };
        match get("format")? {
            Value::Str(s) if s == "apc-serve" => {}
            other => {
                return Err(ServeError::Corrupt(format!(
                    "bad manifest format field {other:?}"
                )))
            }
        }
        match get("version")? {
            Value::Int(1) => {}
            other => {
                return Err(ServeError::Corrupt(format!(
                    "unsupported manifest version {other:?}"
                )))
            }
        }
        let string = |key: &str| -> Result<String, ServeError> {
            match get(key)? {
                Value::Str(s) => Ok(s.clone()),
                other => Err(ServeError::Corrupt(format!("bad {key} field {other:?}"))),
            }
        };
        let int = |key: &str| -> Result<usize, ServeError> {
            match get(key)? {
                Value::Int(v) if *v >= 0 => Ok(*v as usize),
                other => Err(ServeError::Corrupt(format!("bad {key} field {other:?}"))),
            }
        };
        let tolerance = match fields.iter().find(|(k, _)| k == "tolerance") {
            Some((_, Value::Float(f))) => Some(*f as f32),
            Some((_, Value::Int(i))) => Some(*i as f32),
            Some((_, other)) => {
                return Err(ServeError::Corrupt(format!(
                    "bad tolerance field {other:?}"
                )))
            }
            None => None,
        };
        let codec = CodecKind::from_name(&string("codec")?, tolerance)?;
        let iterations = match get("iterations")? {
            Value::Arr(v) if v.iter().all(|x| *x >= 0) => {
                v.iter().map(|&x| x as usize).collect::<Vec<usize>>()
            }
            other => {
                return Err(ServeError::Corrupt(format!(
                    "bad iterations field {other:?}"
                )))
            }
        };
        if !iterations.windows(2).all(|w| w[1] > w[0]) {
            return Err(ServeError::Corrupt(
                "manifest iterations must be strictly increasing".into(),
            ));
        }
        let shard_chunks = match fields.iter().find(|(k, _)| k == "shard_chunks") {
            Some((_, Value::Int(n))) if *n >= 1 => Some(*n as usize),
            Some((_, other)) => {
                return Err(ServeError::Corrupt(format!(
                    "bad shard_chunks field {other:?}"
                )))
            }
            None => None,
        };
        Ok(Self {
            run_id: string("run_id")?,
            n_stagers: int("n_stagers")?,
            width: int("width")?,
            height: int("height")?,
            codec,
            iterations,
            shard_chunks,
        })
    }
}

/// Frame persistence over one backend, scoped to one `run_id`.
#[derive(Debug)]
pub struct FrameStore<B> {
    backend: B,
    run_id: String,
}

impl<B: StoreBackend> FrameStore<B> {
    pub fn new(backend: B, run_id: &str) -> Self {
        validate_run_id(run_id);
        Self {
            backend,
            run_id: run_id.to_owned(),
        }
    }

    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Persist `frame` under its `(run_id, iteration, stager)` key,
    /// returning the stored stream size in bytes.
    pub fn put_frame(&self, frame: &Frame, codec: CodecKind) -> Result<usize, ServeError> {
        let stream = frame.encode(codec);
        self.backend.put(
            &frame_key(&self.run_id, frame.iteration, frame.stager),
            &stream,
        )?;
        Ok(stream.len())
    }

    /// Read a frame's raw encoded stream (what the serve path ships over
    /// the wire — decoding is the client's business).
    pub fn encoded(&self, iteration: u64, stager: u32) -> Result<Vec<u8>, ServeError> {
        Ok(self
            .backend
            .get(&frame_key(&self.run_id, iteration, stager))?)
    }

    /// Read and decode a frame.
    pub fn get_frame(&self, iteration: u64, stager: u32) -> Result<Frame, ServeError> {
        Frame::decode(&self.encoded(iteration, stager)?)
    }

    pub fn contains(&self, iteration: u64, stager: u32) -> Result<bool, ServeError> {
        Ok(self
            .backend
            .contains(&frame_key(&self.run_id, iteration, stager))?)
    }

    /// Write the run-level manifest.
    pub fn put_manifest(&self, manifest: &RunManifest) -> Result<(), ServeError> {
        assert_eq!(manifest.run_id, self.run_id, "manifest run id mismatch");
        self.backend
            .put(&manifest_key(&self.run_id), manifest.to_json().as_bytes())?;
        Ok(())
    }

    /// Read the run-level manifest.
    pub fn manifest(&self) -> Result<RunManifest, ServeError> {
        let bytes = self.backend.get(&manifest_key(&self.run_id))?;
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| ServeError::Corrupt("manifest is not utf-8".into()))?;
        RunManifest::from_json(text)
    }
}

/// Open a completed run for reading, honoring the frame layout its
/// manifest records: sharded runs get the backend wrapped in a
/// [`ShardedStore`] (frame reads become shard byte-range reads), plain
/// runs open as-is. The layout probe is safe either way because
/// `manifest.json` always passes through a `ShardedStore` unsharded.
pub fn open_run(
    backend: Arc<dyn StoreBackend>,
    run_id: &str,
) -> Result<(FrameStore<Arc<dyn StoreBackend>>, RunManifest), ServeError> {
    let manifest = FrameStore::new(Arc::clone(&backend), run_id).manifest()?;
    let reader: Arc<dyn StoreBackend> = match manifest.shard_chunks {
        Some(n) => Arc::new(ShardedStore::new(backend, n)),
        None => backend,
    };
    Ok((FrameStore::new(reader, run_id), manifest))
}

/// The cloneable write handle the staged executor threads through
/// `StagedParams::persist`: a shared backend, a run id, and the codec to
/// write frames with. Every stager clones the handle and writes its own
/// disjoint keys.
#[derive(Clone)]
pub struct FrameSink {
    backend: Arc<dyn StoreBackend>,
    /// Typed handle onto the same object as `backend` when the sink is
    /// sharded, so [`FrameSink::flush`] can seal tail shards.
    sharded: Option<Arc<ShardedStore<Arc<dyn StoreBackend>>>>,
    run_id: String,
    codec: CodecKind,
}

impl FrameSink {
    pub fn new(backend: Arc<dyn StoreBackend>, run_id: &str, codec: CodecKind) -> Self {
        validate_run_id(run_id);
        Self {
            backend,
            sharded: None,
            run_id: run_id.to_owned(),
            codec,
        }
    }

    /// A sink that packs frames `chunks_per_shard` at a time into shard
    /// containers on `backend`. Frames stay readable through the sink
    /// (and its [`FrameSink::store`] views) while buffered; call
    /// [`FrameSink::flush`] once the run completes so external readers
    /// ([`open_run`]) see sealed shards.
    pub fn sharded(
        backend: Arc<dyn StoreBackend>,
        run_id: &str,
        codec: CodecKind,
        chunks_per_shard: usize,
    ) -> Self {
        validate_run_id(run_id);
        let sharded = Arc::new(ShardedStore::new(backend, chunks_per_shard));
        Self {
            backend: Arc::clone(&sharded) as Arc<dyn StoreBackend>,
            sharded: Some(sharded),
            run_id: run_id.to_owned(),
            codec,
        }
    }

    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Frames per shard container, or `None` for one key per frame —
    /// what the run driver records in the [`RunManifest`].
    pub fn shard_chunks(&self) -> Option<usize> {
        self.sharded.as_ref().map(|s| s.chunks_per_shard())
    }

    /// Seal any partially-filled shard groups. A no-op for unsharded
    /// sinks, so run drivers call it unconditionally at end of run.
    pub fn flush(&self) -> Result<(), ServeError> {
        match &self.sharded {
            Some(s) => Ok(s.flush()?),
            None => Ok(()),
        }
    }

    pub fn backend(&self) -> &Arc<dyn StoreBackend> {
        &self.backend
    }

    /// A [`FrameStore`] view over the sink's backend and run id.
    pub fn store(&self) -> FrameStore<&dyn StoreBackend> {
        FrameStore::new(&*self.backend, &self.run_id)
    }

    /// Persist one frame with the sink's codec; returns the stored bytes.
    /// A failed write panics: inside a rank program that fails the run
    /// loudly and poisons the session, the same contract as a failed
    /// chunk read in `Prepared::from_store`.
    pub fn persist(&self, frame: &Frame) -> usize {
        self.persist_stream(frame).len()
    }

    /// [`FrameSink::persist`] returning the encoded stream itself, so a
    /// serving stager can seed its hot cache without encoding twice.
    pub fn persist_stream(&self, frame: &Frame) -> Vec<u8> {
        let stream = frame.encode(self.codec);
        self.backend
            .put(
                &frame_key(&self.run_id, frame.iteration, frame.stager),
                &stream,
            )
            .unwrap_or_else(|e| {
                // apc-lint: allow(unwrap-in-lib): documented contract — a failed write fails the run loudly and poisons the session
                panic!(
                    "failed to persist frame (run {}, iteration {}, stager {}): {e}",
                    self.run_id, frame.iteration, frame.stager
                )
            });
        stream
    }
}

impl std::fmt::Debug for FrameSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameSink")
            .field("run_id", &self.run_id)
            .field("codec", &self.codec)
            .finish_non_exhaustive()
    }
}

/// Two sinks are equal when they write the same run through the same
/// backend instance — what config equality needs (`PipelineConfig`
/// cloning must compare equal to its source).
impl PartialEq for FrameSink {
    fn eq(&self, other: &Self) -> bool {
        self.run_id == other.run_id
            && self.codec == other.codec
            && Arc::ptr_eq(&self.backend, &other.backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_store::{DirStore, MemStore, StoreError};

    fn sample_frame(iteration: u64, stager: u32) -> Frame {
        let pixels: Vec<f32> = (0..24)
            .map(|i| (i as f32 + iteration as f32 * 0.1).cos() * 10.0)
            .collect();
        Frame::new(iteration, stager, 6, 4, pixels).with_render_info(99, 30.0)
    }

    #[test]
    fn frame_keys_are_stable_and_disjoint() {
        assert_eq!(frame_key("r", 300, 2), "f/r/000300/0002");
        assert_ne!(frame_key("r", 300, 2), frame_key("r", 300, 3));
        assert_ne!(frame_key("a", 300, 2), frame_key("b", 300, 2));
    }

    #[test]
    fn put_get_roundtrip_mem_and_dir() {
        let mem = FrameStore::new(MemStore::new(), "run");
        let dir_root = std::env::temp_dir()
            .join("apc_serve_store_tests")
            .join("roundtrip");
        let _ = std::fs::remove_dir_all(&dir_root);
        let dir = FrameStore::new(DirStore::create(&dir_root).unwrap(), "run");
        let frame = sample_frame(300, 1);
        for codec in [CodecKind::Raw, CodecKind::Fpz, CodecKind::Lz] {
            mem.put_frame(&frame, codec).unwrap();
            dir.put_frame(&frame, codec).unwrap();
            assert_eq!(mem.get_frame(300, 1).unwrap(), frame);
            assert_eq!(dir.get_frame(300, 1).unwrap(), frame);
            // Disk and memory hold byte-identical streams.
            assert_eq!(
                mem.encoded(300, 1).unwrap(),
                dir.encoded(300, 1).unwrap(),
                "{}",
                codec.name()
            );
        }
        assert!(mem.contains(300, 1).unwrap());
        assert!(!mem.contains(301, 1).unwrap());
    }

    #[test]
    fn missing_frame_is_store_not_found() {
        let store = FrameStore::new(MemStore::new(), "run");
        assert!(matches!(
            store.get_frame(1, 0),
            Err(ServeError::Store(StoreError::NotFound(_)))
        ));
    }

    #[test]
    fn truncated_stored_frame_is_corrupt() {
        let store = FrameStore::new(MemStore::new(), "run");
        let frame = sample_frame(10, 0);
        store.put_frame(&frame, CodecKind::Fpz).unwrap();
        let full = store.encoded(10, 0).unwrap();
        store
            .backend()
            .put(&frame_key("run", 10, 0), &full[..full.len() / 2])
            .unwrap();
        assert!(matches!(
            store.get_frame(10, 0),
            Err(ServeError::Corrupt(_))
        ));
    }

    #[test]
    fn manifest_roundtrip() {
        let store = FrameStore::new(MemStore::new(), "run");
        let manifest = RunManifest {
            run_id: "run".into(),
            n_stagers: 4,
            width: 8,
            height: 8,
            codec: CodecKind::Lz,
            iterations: vec![100, 250, 400],
            shard_chunks: None,
        };
        store.put_manifest(&manifest).unwrap();
        assert_eq!(store.manifest().unwrap(), manifest);
        // The shard layout round-trips too (and stays None when absent).
        let sharded = RunManifest {
            shard_chunks: Some(16),
            ..manifest
        };
        store.put_manifest(&sharded).unwrap();
        assert_eq!(store.manifest().unwrap().shard_chunks, Some(16));
    }

    /// The `{iteration:06}`/`{stager:04}` padding saturates: beyond it,
    /// keys stay unique and readable but no longer sort numerically as
    /// strings. The manifest's `frame_keys` is the ordering contract.
    #[test]
    fn frame_keys_past_padding_stay_unique_and_ordered_by_manifest() {
        // Boundary: padding exactly exhausted / exceeded.
        assert_eq!(frame_key("r", 999_999, 9_999), "f/r/999999/9999");
        assert_eq!(frame_key("r", 1_000_000, 10_000), "f/r/1000000/10000");
        assert_ne!(frame_key("r", 1_000_000, 0), frame_key("r", 100_000, 0));

        // Frames at and past the boundary round-trip through the store.
        let store = FrameStore::new(MemStore::new(), "r");
        for (it, stager) in [(999_999, 9_999), (1_000_000, 10_000), (1_000_001, 0)] {
            let frame = Frame::new(it, stager, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
            store.put_frame(&frame, CodecKind::Raw).unwrap();
            assert_eq!(store.get_frame(it, stager).unwrap(), frame);
        }

        // Lexicographic key order breaks exactly there ("1000000" sorts
        // before "999999")…
        let manifest = RunManifest {
            run_id: "r".into(),
            n_stagers: 1,
            width: 2,
            height: 2,
            codec: CodecKind::Raw,
            iterations: vec![999_999, 1_000_000],
            shard_chunks: None,
        };
        let keys = manifest.frame_keys();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_ne!(keys, sorted, "padding saturation breaks string order");
        // …while the manifest's explicit order follows the iterations.
        assert_eq!(keys, ["f/r/999999/0000", "f/r/1000000/0000"]);
    }

    #[test]
    fn manifest_rejects_malformed_documents() {
        for text in [
            "",
            "{}",
            "{\"format\": \"apc-store\", \"version\": 1}",
            "{\"format\": \"apc-serve\", \"version\": 2}",
            // Unsorted iterations.
            "{\"format\":\"apc-serve\",\"version\":1,\"run_id\":\"r\",
              \"n_stagers\":1,\"width\":2,\"height\":2,\"codec\":\"raw\",
              \"iterations\":[5,2]}",
        ] {
            assert!(
                RunManifest::from_json(text).is_err(),
                "accepted malformed manifest: {text:?}"
            );
        }
    }

    #[test]
    fn sink_persists_and_compares() {
        let backend: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
        let sink = FrameSink::new(Arc::clone(&backend), "run", CodecKind::Fpz);
        let frame = sample_frame(42, 0);
        let bytes = sink.persist(&frame);
        assert!(bytes > 0);
        assert_eq!(sink.store().get_frame(42, 0).unwrap(), frame);
        assert_eq!(sink, sink.clone(), "clones compare equal");
        let other = FrameSink::new(Arc::new(MemStore::new()), "run", CodecKind::Fpz);
        assert_ne!(sink, other, "different backends are different sinks");
    }

    #[test]
    fn sharded_sink_roundtrips_and_open_run_follows_the_manifest() {
        let inner: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
        let sink = FrameSink::sharded(Arc::clone(&inner), "run", CodecKind::Fpz, 4);
        assert_eq!(sink.shard_chunks(), Some(4));
        let manifest = RunManifest {
            run_id: "run".into(),
            n_stagers: 2,
            width: 6,
            height: 4,
            codec: CodecKind::Fpz,
            iterations: vec![100, 200, 300],
            shard_chunks: sink.shard_chunks(),
        };
        sink.store().put_manifest(&manifest).unwrap();
        let mut streams = Vec::new();
        for &it in &manifest.iterations {
            for stager in 0..manifest.n_stagers as u32 {
                let frame = sample_frame(it as u64, stager);
                streams.push(sink.persist_stream(&frame));
                // Buffered frames are immediately readable through the
                // sink — the serving cache-miss path depends on this.
                assert_eq!(sink.store().get_frame(it as u64, stager).unwrap(), frame);
            }
        }
        sink.flush().unwrap();

        // The raw backend holds shard containers, not per-frame keys.
        assert!(!inner.contains(&frame_key("run", 100, 0)).unwrap());
        assert!(inner.contains("f/run/000100/s000000").unwrap());

        // A fresh reader over the raw backend follows the manifest.
        let (store, read_back) = open_run(Arc::clone(&inner), "run").unwrap();
        assert_eq!(read_back, manifest);
        for (key, want) in manifest.frame_keys().iter().zip(&streams) {
            assert_eq!(&store.backend().get(key).unwrap(), want, "{key}");
        }
        // And an unsharded sink round-trips through the same open_run.
        let plain: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
        let sink = FrameSink::new(Arc::clone(&plain), "run", CodecKind::Fpz);
        sink.store()
            .put_manifest(&RunManifest {
                iterations: vec![100],
                shard_chunks: None,
                ..manifest
            })
            .unwrap();
        sink.persist(&sample_frame(100, 0));
        sink.flush().unwrap(); // no-op
        let (store, m) = open_run(plain, "run").unwrap();
        assert_eq!(m.shard_chunks, None);
        assert_eq!(store.get_frame(100, 0).unwrap(), sample_frame(100, 0));
    }

    #[test]
    #[should_panic(expected = "single path segment")]
    fn slash_in_run_id_rejected() {
        let _ = FrameStore::new(MemStore::new(), "a/b");
    }

    /// A run id that would corrupt the manifest's JSON (no escape support
    /// in the strict parser) is rejected at construction, not at read
    /// time after the run already wrote its data.
    #[test]
    #[should_panic(expected = "single path segment")]
    fn quote_in_run_id_rejected() {
        let _ = FrameSink::new(Arc::new(MemStore::new()), "run\"A", CodecKind::Raw);
    }
}

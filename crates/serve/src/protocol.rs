//! The frame-serving wire protocol.
//!
//! Clients send a [`FrameRequest`] and block for the matching
//! [`FrameReply`]; both ride the `apc_comm::bounded` serve endpoints
//! ([`apc_comm::ServeClient`] / [`apc_comm::ServeServer`]), so their
//! virtual wire cost follows the ordinary `NetModel` accounting — which
//! is why both types implement [`Meter`]. Replies ship frames as their
//! *encoded* streams: the server never decodes (a cache or store read is
//! a byte copy), the client decodes and verifies.
//!
//! What happens when a request races frame production is the
//! [`ServePolicy`]'s call:
//!
//! * [`ServePolicy::WaitForFrame`] — the reply is deferred, in virtual
//!   time, until the requested frame has been rendered; the wait shows up
//!   in the client's measured service latency.
//! * [`ServePolicy::BestEffort`] — the server answers immediately with
//!   the newest frame it has (flagged `exact = false`), or
//!   [`FrameReply::NotYet`] when it has nothing.

use apc_comm::Meter;

use crate::ServeError;

/// What a client asks a serving stager for. Iterations are simulation
/// iteration numbers (the frame key), not frame indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameRequest {
    /// The newest frame the stager has rendered.
    Latest,
    /// The frame of one specific iteration.
    AtIteration(u64),
    /// Every frame in an inclusive iteration window.
    Range { start: u64, end: u64 },
}

/// Wire tags of the request encoding (one byte, then LE u64 operands).
const TAG_LATEST: u8 = 1;
const TAG_AT: u8 = 2;
const TAG_RANGE: u8 = 3;

impl FrameRequest {
    /// Serialize to the one-byte-tag + LE-operand wire form. The encoded
    /// length equals [`Meter::nbytes`], so a request costs on the virtual
    /// wire exactly what its bytes occupy on a real one.
    pub fn encode(&self) -> Vec<u8> {
        match *self {
            FrameRequest::Latest => vec![TAG_LATEST],
            FrameRequest::AtIteration(it) => {
                let mut out = Vec::with_capacity(9);
                out.push(TAG_AT);
                out.extend_from_slice(&it.to_le_bytes());
                out
            }
            FrameRequest::Range { start, end } => {
                let mut out = Vec::with_capacity(17);
                out.push(TAG_RANGE);
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&end.to_le_bytes());
                out
            }
        }
    }

    /// Parse a request off the wire. Decoding is total — truncated,
    /// oversized, bit-flipped, or semantically invalid bytes (a `Range`
    /// with `start > end`, which no well-behaved client can produce) come
    /// back as [`ServeError::Corrupt`], never as a panic and never as a
    /// request the server would have to defend against downstream.
    pub fn decode(bytes: &[u8]) -> Result<Self, ServeError> {
        let Some((&tag, rest)) = bytes.split_first() else {
            return Err(ServeError::Corrupt("empty frame request".into()));
        };
        let u64_at = |o: usize| -> Result<u64, ServeError> {
            rest.get(o..o + 8)
                .and_then(|s| s.try_into().ok())
                .map(u64::from_le_bytes)
                .ok_or_else(|| {
                    ServeError::Corrupt(format!(
                        "frame request truncated: {} payload bytes",
                        rest.len()
                    ))
                })
        };
        let exact_len = |want: usize| -> Result<(), ServeError> {
            if rest.len() == want {
                Ok(())
            } else {
                Err(ServeError::Corrupt(format!(
                    "frame request payload is {} bytes, tag {tag} takes {want}",
                    rest.len()
                )))
            }
        };
        match tag {
            TAG_LATEST => {
                exact_len(0)?;
                Ok(FrameRequest::Latest)
            }
            TAG_AT => {
                exact_len(8)?;
                Ok(FrameRequest::AtIteration(u64_at(0)?))
            }
            TAG_RANGE => {
                exact_len(16)?;
                let start = u64_at(0)?;
                let end = u64_at(8)?;
                if start > end {
                    return Err(ServeError::Corrupt(format!(
                        "frame request range is inverted: start {start} > end {end}"
                    )));
                }
                Ok(FrameRequest::Range { start, end })
            }
            other => Err(ServeError::Corrupt(format!(
                "unknown frame request tag {other}"
            ))),
        }
    }
}

impl Meter for FrameRequest {
    fn nbytes(&self) -> usize {
        // Tag byte plus the iteration operands.
        match self {
            FrameRequest::Latest => 1,
            FrameRequest::AtIteration(_) => 1 + 8,
            FrameRequest::Range { .. } => 1 + 16,
        }
    }
}

/// One served frame: the encoded stream plus its coordinates and whether
/// the serving stager answered it from the hot cache.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedFrame {
    pub iteration: u64,
    pub stager: u32,
    /// Answered from the LRU cache (false: a store read was charged).
    pub cache_hit: bool,
    /// The frame's encoded stream (decode with `Frame::decode`).
    pub stream: Vec<u8>,
}

impl Meter for ServedFrame {
    fn nbytes(&self) -> usize {
        8 + 4 + 1 + self.stream.len()
    }
}

/// The server's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameReply {
    /// The served frames (one for `Latest`/`AtIteration`, several for
    /// `Range`). `exact` is false when a best-effort server substituted
    /// newer/fewer frames than the request named.
    Frames {
        exact: bool,
        frames: Vec<ServedFrame>,
    },
    /// Best-effort server with nothing rendered yet (or an empty range).
    NotYet,
    /// The request named an iteration outside the run.
    NoSuchIteration(u64),
}

impl FrameReply {
    /// Frames carried by the reply.
    pub fn frames(&self) -> &[ServedFrame] {
        match self {
            FrameReply::Frames { frames, .. } => frames,
            _ => &[],
        }
    }

    /// Whether the reply answers the request exactly as asked.
    pub fn exact(&self) -> bool {
        matches!(self, FrameReply::Frames { exact: true, .. })
    }
}

impl Meter for FrameReply {
    fn nbytes(&self) -> usize {
        match self {
            FrameReply::Frames { frames, .. } => {
                2 + frames.iter().map(Meter::nbytes).sum::<usize>()
            }
            FrameReply::NotYet => 1,
            FrameReply::NoSuchIteration(_) => 1 + 8,
        }
    }
}

/// What a serving stager does with a request whose frame has not been
/// rendered yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePolicy {
    /// Defer the reply until the frame exists; the client's latency
    /// absorbs the production wait. Every answer is exact.
    WaitForFrame,
    /// Answer immediately with the newest rendered frame (`exact =
    /// false`), or [`FrameReply::NotYet`] when nothing has been rendered.
    BestEffort,
}

impl ServePolicy {
    /// Short stable name for CSV/report rows.
    pub fn name(&self) -> &'static str {
        match self {
            ServePolicy::WaitForFrame => "wait-for-frame",
            ServePolicy::BestEffort => "best-effort",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sizes_scale_with_operands() {
        assert_eq!(FrameRequest::Latest.nbytes(), 1);
        assert_eq!(FrameRequest::AtIteration(5).nbytes(), 9);
        assert_eq!(FrameRequest::Range { start: 1, end: 4 }.nbytes(), 17);
    }

    #[test]
    fn reply_meters_its_streams() {
        let frame = ServedFrame {
            iteration: 3,
            stager: 0,
            cache_hit: true,
            stream: vec![0; 100],
        };
        assert_eq!(frame.nbytes(), 113);
        let reply = FrameReply::Frames {
            exact: true,
            frames: vec![frame.clone(), frame],
        };
        assert_eq!(reply.nbytes(), 2 + 2 * 113);
        assert_eq!(FrameReply::NotYet.nbytes(), 1);
        assert_eq!(FrameReply::NoSuchIteration(9).nbytes(), 9);
    }

    #[test]
    fn reply_accessors() {
        let reply = FrameReply::Frames {
            exact: true,
            frames: vec![ServedFrame {
                iteration: 1,
                stager: 0,
                cache_hit: false,
                stream: vec![],
            }],
        };
        assert_eq!(reply.frames().len(), 1);
        assert!(reply.exact());
        assert!(!FrameReply::NotYet.exact());
        assert!(FrameReply::NotYet.frames().is_empty());
        assert!(!FrameReply::NoSuchIteration(2).exact());
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(ServePolicy::WaitForFrame.name(), "wait-for-frame");
        assert_eq!(ServePolicy::BestEffort.name(), "best-effort");
    }

    #[test]
    fn request_codec_round_trips_and_matches_meter() {
        let cases = [
            FrameRequest::Latest,
            FrameRequest::AtIteration(0),
            FrameRequest::AtIteration(u64::MAX),
            FrameRequest::Range { start: 0, end: 0 },
            FrameRequest::Range {
                start: 7,
                end: u64::MAX,
            },
        ];
        for req in cases {
            let wire = req.encode();
            assert_eq!(wire.len(), req.nbytes(), "{req:?} wire/meter mismatch");
            assert_eq!(FrameRequest::decode(&wire).unwrap(), req);
        }
    }

    #[test]
    fn decode_rejects_empty_and_unknown_tags() {
        assert!(FrameRequest::decode(&[]).is_err());
        for tag in [0u8, 4, 7, 0xff] {
            let err = FrameRequest::decode(&[tag]).unwrap_err();
            assert!(matches!(err, ServeError::Corrupt(_)), "tag {tag}: {err}");
        }
    }

    #[test]
    fn decode_rejects_every_truncation() {
        for req in [
            FrameRequest::AtIteration(123),
            FrameRequest::Range { start: 3, end: 9 },
        ] {
            let wire = req.encode();
            for cut in 1..wire.len() {
                let err = FrameRequest::decode(&wire[..cut]).unwrap_err();
                assert!(
                    matches!(err, ServeError::Corrupt(_)),
                    "{req:?} cut at {cut} must be Corrupt, got {err}"
                );
            }
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        for req in [
            FrameRequest::Latest,
            FrameRequest::AtIteration(5),
            FrameRequest::Range { start: 1, end: 2 },
        ] {
            let mut wire = req.encode();
            wire.push(0);
            let err = FrameRequest::decode(&wire).unwrap_err();
            assert!(matches!(err, ServeError::Corrupt(_)), "{req:?}: {err}");
        }
    }

    #[test]
    fn decode_rejects_inverted_range_as_typed_error() {
        // A well-formed wire image whose semantics are impossible: the
        // decoder must hand back a typed error, not a request the server
        // has to defend against (and certainly not a panic).
        let mut wire = Vec::new();
        wire.push(3u8);
        wire.extend_from_slice(&10u64.to_le_bytes());
        wire.extend_from_slice(&3u64.to_le_bytes());
        let err = FrameRequest::decode(&wire).unwrap_err();
        match err {
            ServeError::Corrupt(msg) => assert!(msg.contains("inverted"), "{msg}"),
            other => panic!("expected Corrupt, got {other}"),
        }
    }

    #[test]
    fn decode_survives_single_bit_flips() {
        // Bit-flipped requests either decode to some valid request or
        // fail as Corrupt; they never panic. Flipping the tag byte of an
        // equal-length variant can legitimately produce a different valid
        // request — the invariant under attack is totality, not detection.
        for req in [
            FrameRequest::Latest,
            FrameRequest::AtIteration(99),
            FrameRequest::Range { start: 4, end: 40 },
        ] {
            let wire = req.encode();
            for byte in 0..wire.len() {
                for bit in 0..8 {
                    let mut flipped = wire.clone();
                    flipped[byte] ^= 1 << bit;
                    let _ = FrameRequest::decode(&flipped);
                }
            }
        }
    }
}

//! The frame-serving wire protocol.
//!
//! Clients send a [`FrameRequest`] and block for the matching
//! [`FrameReply`]; both ride the `apc_comm::bounded` serve endpoints
//! ([`apc_comm::ServeClient`] / [`apc_comm::ServeServer`]), so their
//! virtual wire cost follows the ordinary `NetModel` accounting — which
//! is why both types implement [`Meter`]. Replies ship frames as their
//! *encoded* streams: the server never decodes (a cache or store read is
//! a byte copy), the client decodes and verifies.
//!
//! What happens when a request races frame production is the
//! [`ServePolicy`]'s call:
//!
//! * [`ServePolicy::WaitForFrame`] — the reply is deferred, in virtual
//!   time, until the requested frame has been rendered; the wait shows up
//!   in the client's measured service latency.
//! * [`ServePolicy::BestEffort`] — the server answers immediately with
//!   the newest frame it has (flagged `exact = false`), or
//!   [`FrameReply::NotYet`] when it has nothing.

use apc_comm::Meter;

/// What a client asks a serving stager for. Iterations are simulation
/// iteration numbers (the frame key), not frame indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameRequest {
    /// The newest frame the stager has rendered.
    Latest,
    /// The frame of one specific iteration.
    AtIteration(u64),
    /// Every frame in an inclusive iteration window.
    Range { start: u64, end: u64 },
}

impl Meter for FrameRequest {
    fn nbytes(&self) -> usize {
        // Tag byte plus the iteration operands.
        match self {
            FrameRequest::Latest => 1,
            FrameRequest::AtIteration(_) => 1 + 8,
            FrameRequest::Range { .. } => 1 + 16,
        }
    }
}

/// One served frame: the encoded stream plus its coordinates and whether
/// the serving stager answered it from the hot cache.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedFrame {
    pub iteration: u64,
    pub stager: u32,
    /// Answered from the LRU cache (false: a store read was charged).
    pub cache_hit: bool,
    /// The frame's encoded stream (decode with `Frame::decode`).
    pub stream: Vec<u8>,
}

impl Meter for ServedFrame {
    fn nbytes(&self) -> usize {
        8 + 4 + 1 + self.stream.len()
    }
}

/// The server's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameReply {
    /// The served frames (one for `Latest`/`AtIteration`, several for
    /// `Range`). `exact` is false when a best-effort server substituted
    /// newer/fewer frames than the request named.
    Frames {
        exact: bool,
        frames: Vec<ServedFrame>,
    },
    /// Best-effort server with nothing rendered yet (or an empty range).
    NotYet,
    /// The request named an iteration outside the run.
    NoSuchIteration(u64),
}

impl FrameReply {
    /// Frames carried by the reply.
    pub fn frames(&self) -> &[ServedFrame] {
        match self {
            FrameReply::Frames { frames, .. } => frames,
            _ => &[],
        }
    }

    /// Whether the reply answers the request exactly as asked.
    pub fn exact(&self) -> bool {
        matches!(self, FrameReply::Frames { exact: true, .. })
    }
}

impl Meter for FrameReply {
    fn nbytes(&self) -> usize {
        match self {
            FrameReply::Frames { frames, .. } => {
                2 + frames.iter().map(Meter::nbytes).sum::<usize>()
            }
            FrameReply::NotYet => 1,
            FrameReply::NoSuchIteration(_) => 1 + 8,
        }
    }
}

/// What a serving stager does with a request whose frame has not been
/// rendered yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePolicy {
    /// Defer the reply until the frame exists; the client's latency
    /// absorbs the production wait. Every answer is exact.
    WaitForFrame,
    /// Answer immediately with the newest rendered frame (`exact =
    /// false`), or [`FrameReply::NotYet`] when nothing has been rendered.
    BestEffort,
}

impl ServePolicy {
    /// Short stable name for CSV/report rows.
    pub fn name(&self) -> &'static str {
        match self {
            ServePolicy::WaitForFrame => "wait-for-frame",
            ServePolicy::BestEffort => "best-effort",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sizes_scale_with_operands() {
        assert_eq!(FrameRequest::Latest.nbytes(), 1);
        assert_eq!(FrameRequest::AtIteration(5).nbytes(), 9);
        assert_eq!(FrameRequest::Range { start: 1, end: 4 }.nbytes(), 17);
    }

    #[test]
    fn reply_meters_its_streams() {
        let frame = ServedFrame {
            iteration: 3,
            stager: 0,
            cache_hit: true,
            stream: vec![0; 100],
        };
        assert_eq!(frame.nbytes(), 113);
        let reply = FrameReply::Frames {
            exact: true,
            frames: vec![frame.clone(), frame],
        };
        assert_eq!(reply.nbytes(), 2 + 2 * 113);
        assert_eq!(FrameReply::NotYet.nbytes(), 1);
        assert_eq!(FrameReply::NoSuchIteration(9).nbytes(), 9);
    }

    #[test]
    fn reply_accessors() {
        let reply = FrameReply::Frames {
            exact: true,
            frames: vec![ServedFrame {
                iteration: 1,
                stager: 0,
                cache_hit: false,
                stream: vec![],
            }],
        };
        assert_eq!(reply.frames().len(), 1);
        assert!(reply.exact());
        assert!(!FrameReply::NotYet.exact());
        assert!(FrameReply::NotYet.frames().is_empty());
        assert!(!FrameReply::NoSuchIteration(2).exact());
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(ServePolicy::WaitForFrame.name(), "wait-for-frame");
        assert_eq!(ServePolicy::BestEffort.name(), "best-effort");
    }
}

//! The frame-serving wire protocol.
//!
//! Clients send a [`FrameRequest`] and block for the matching
//! [`FrameReply`]; both ride the `apc_comm::bounded` serve endpoints
//! ([`apc_comm::ServeClient`] / [`apc_comm::ServeServer`]), so their
//! virtual wire cost follows the ordinary `NetModel` accounting — which
//! is why both types implement [`Meter`]. Replies ship frames as their
//! *encoded* streams: the server never decodes (a cache or store read is
//! a byte copy), the client decodes and verifies.
//!
//! What happens when a request races frame production is the
//! [`ServePolicy`]'s call:
//!
//! * [`ServePolicy::WaitForFrame`] — the reply is deferred, in virtual
//!   time, until the requested frame has been rendered; the wait shows up
//!   in the client's measured service latency.
//! * [`ServePolicy::BestEffort`] — the server answers immediately with
//!   the newest frame it has (flagged `exact = false`), or
//!   [`FrameReply::NotYet`] when it has nothing.

use apc_comm::Meter;
use apc_compress::Zfpx;

use crate::ServeError;

/// What a client asks a serving stager for. Iterations are simulation
/// iteration numbers (the frame key), not frame indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameRequest {
    /// The newest frame the stager has rendered.
    Latest,
    /// The frame of one specific iteration.
    AtIteration(u64),
    /// Every frame in an inclusive iteration window.
    Range { start: u64, end: u64 },
}

/// Wire tags of the request encoding (one byte, then LE u64 operands).
const TAG_LATEST: u8 = 1;
const TAG_AT: u8 = 2;
const TAG_RANGE: u8 = 3;

impl FrameRequest {
    /// Serialize to the one-byte-tag + LE-operand wire form. The encoded
    /// length equals [`Meter::nbytes`], so a request costs on the virtual
    /// wire exactly what its bytes occupy on a real one.
    pub fn encode(&self) -> Vec<u8> {
        match *self {
            FrameRequest::Latest => vec![TAG_LATEST],
            FrameRequest::AtIteration(it) => {
                let mut out = Vec::with_capacity(9);
                out.push(TAG_AT);
                out.extend_from_slice(&it.to_le_bytes());
                out
            }
            FrameRequest::Range { start, end } => {
                let mut out = Vec::with_capacity(17);
                out.push(TAG_RANGE);
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&end.to_le_bytes());
                out
            }
        }
    }

    /// Parse a request off the wire. Decoding is total — truncated,
    /// oversized, bit-flipped, or semantically invalid bytes (a `Range`
    /// with `start > end`, which no well-behaved client can produce) come
    /// back as [`ServeError::Corrupt`], never as a panic and never as a
    /// request the server would have to defend against downstream.
    pub fn decode(bytes: &[u8]) -> Result<Self, ServeError> {
        let Some((&tag, rest)) = bytes.split_first() else {
            return Err(ServeError::Corrupt("empty frame request".into()));
        };
        let u64_at = |o: usize| -> Result<u64, ServeError> {
            rest.get(o..o + 8)
                .and_then(|s| s.try_into().ok())
                .map(u64::from_le_bytes)
                .ok_or_else(|| {
                    ServeError::Corrupt(format!(
                        "frame request truncated: {} payload bytes",
                        rest.len()
                    ))
                })
        };
        let exact_len = |want: usize| -> Result<(), ServeError> {
            if rest.len() == want {
                Ok(())
            } else {
                Err(ServeError::Corrupt(format!(
                    "frame request payload is {} bytes, tag {tag} takes {want}",
                    rest.len()
                )))
            }
        };
        match tag {
            TAG_LATEST => {
                exact_len(0)?;
                Ok(FrameRequest::Latest)
            }
            TAG_AT => {
                exact_len(8)?;
                Ok(FrameRequest::AtIteration(u64_at(0)?))
            }
            TAG_RANGE => {
                exact_len(16)?;
                let start = u64_at(0)?;
                let end = u64_at(8)?;
                if start > end {
                    return Err(ServeError::Corrupt(format!(
                        "frame request range is inverted: start {start} > end {end}"
                    )));
                }
                Ok(FrameRequest::Range { start, end })
            }
            other => Err(ServeError::Corrupt(format!(
                "unknown frame request tag {other}"
            ))),
        }
    }
}

impl Meter for FrameRequest {
    fn nbytes(&self) -> usize {
        // Tag byte plus the iteration operands.
        match self {
            FrameRequest::Latest => 1,
            FrameRequest::AtIteration(_) => 1 + 8,
            FrameRequest::Range { .. } => 1 + 16,
        }
    }
}

/// How faithfully a served frame reproduces what the stager rendered.
///
/// The adaptive serving executor walks this ladder under latency
/// pressure: a `BudgetController` over the stager's observed reply
/// latencies emits a reduction percent, and [`Fidelity::for_percent`]
/// maps it to the cheapest reply that still meets the budget. The tag
/// rides the wire with every [`ServedFrame`] so clients (and tests) can
/// attribute degradation instead of inferring it from byte counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fidelity {
    /// The stream exactly as rendered and persisted.
    Full,
    /// Re-encoded through `Zfpx { tolerance }`: every pixel survives but
    /// only to within `tolerance` absolute error.
    Lossy { tolerance: f32 },
    /// Score-ranked block dropping: only the top `keep_percent` of
    /// pixels (by reflectivity score) survive, the rest are zeroed, and
    /// the result is re-encoded through `Zfpx { tolerance }` (runs of
    /// zeros compress to almost nothing).
    Dropped { keep_percent: f32, tolerance: f32 },
    /// Provenance only: a 0×0 frame whose header still names the
    /// iteration, stager, triangle count and reduction percent.
    HeaderOnly,
}

/// Wire tags of the fidelity encoding (one byte, then LE f32 operands).
const FID_FULL: u8 = 0;
const FID_LOSSY: u8 = 1;
const FID_DROPPED: u8 = 2;
const FID_HEADER_ONLY: u8 = 3;

impl Fidelity {
    /// Reduction percent (0 = no pressure, 100 = shed everything) →
    /// ladder rung. The bands are chosen so the controller's usual
    /// operating points land on distinct rungs:
    ///
    /// | percent   | fidelity                                                  |
    /// |-----------|-----------------------------------------------------------|
    /// | ≤ 0.5     | `Full`                                                    |
    /// | 0.5 – 50  | `Lossy`, tolerance [`Zfpx::graded_tolerance`]`(p)`        |
    /// | 50 – 90   | `Dropped`, keep `100 − p` %, tolerance `1e-1`             |
    /// | > 90      | `HeaderOnly`                                              |
    pub fn for_percent(percent: f64) -> Self {
        let p = if percent.is_finite() {
            percent.clamp(0.0, 100.0)
        } else {
            100.0
        };
        if p <= 0.5 {
            Fidelity::Full
        } else if p <= 50.0 {
            Fidelity::Lossy {
                tolerance: Zfpx::graded_tolerance(p),
            }
        } else if p <= 90.0 {
            Fidelity::Dropped {
                keep_percent: (100.0 - p) as f32,
                tolerance: 1e-1,
            }
        } else {
            Fidelity::HeaderOnly
        }
    }

    /// Short stable name for CSV/report rows.
    pub fn name(&self) -> &'static str {
        match self {
            Fidelity::Full => "full",
            Fidelity::Lossy { .. } => "lossy",
            Fidelity::Dropped { .. } => "dropped",
            Fidelity::HeaderOnly => "header-only",
        }
    }

    /// Ladder rung index: 0 = full … 3 = header-only. Orders fidelities
    /// by severity without comparing codec parameters.
    pub fn rung(&self) -> u8 {
        match self {
            Fidelity::Full => 0,
            Fidelity::Lossy { .. } => 1,
            Fidelity::Dropped { .. } => 2,
            Fidelity::HeaderOnly => 3,
        }
    }

    /// The more degraded of two fidelities (by rung).
    pub fn worst(self, other: Self) -> Self {
        if other.rung() > self.rung() {
            other
        } else {
            self
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            Fidelity::Full => out.push(FID_FULL),
            Fidelity::Lossy { tolerance } => {
                out.push(FID_LOSSY);
                out.extend_from_slice(&tolerance.to_le_bytes());
            }
            Fidelity::Dropped {
                keep_percent,
                tolerance,
            } => {
                out.push(FID_DROPPED);
                out.extend_from_slice(&keep_percent.to_le_bytes());
                out.extend_from_slice(&tolerance.to_le_bytes());
            }
            Fidelity::HeaderOnly => out.push(FID_HEADER_ONLY),
        }
    }
}

impl Meter for Fidelity {
    fn nbytes(&self) -> usize {
        match self {
            Fidelity::Full | Fidelity::HeaderOnly => 1,
            Fidelity::Lossy { .. } => 1 + 4,
            Fidelity::Dropped { .. } => 1 + 8,
        }
    }
}

/// One served frame: the encoded stream plus its coordinates, whether
/// the serving stager answered it from the hot cache, and at what
/// fidelity the stager shipped it.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedFrame {
    pub iteration: u64,
    pub stager: u32,
    /// Answered from the LRU cache (false: a store read was charged).
    pub cache_hit: bool,
    /// Ladder rung the reply was shipped at. Anything but
    /// [`Fidelity::Full`] means `stream` is a degraded re-encode of the
    /// rendered frame.
    pub fidelity: Fidelity,
    /// The frame's encoded stream (decode with `Frame::decode`).
    pub stream: Vec<u8>,
}

impl Meter for ServedFrame {
    fn nbytes(&self) -> usize {
        // iteration + stager + cache_hit + fidelity + stream_len + stream,
        // matching the wire image byte for byte.
        8 + 4 + 1 + self.fidelity.nbytes() + 4 + self.stream.len()
    }
}

/// The server's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameReply {
    /// The served frames (one for `Latest`/`AtIteration`, several for
    /// `Range`). `exact` is false when a best-effort server substituted
    /// newer/fewer frames than the request named.
    Frames {
        exact: bool,
        frames: Vec<ServedFrame>,
    },
    /// Best-effort server with nothing rendered yet (or an empty range).
    NotYet,
    /// The request named an iteration outside the run.
    NoSuchIteration(u64),
}

/// Wire tags of the reply encoding (one byte, then the variant payload).
const REPLY_FRAMES: u8 = 1;
const REPLY_NOT_YET: u8 = 2;
const REPLY_NO_SUCH: u8 = 3;

/// Smallest possible wire image of one served frame (empty stream, Full
/// fidelity): bounds the frame count a corrupt header can make the
/// decoder allocate for.
const MIN_FRAME_WIRE: usize = 8 + 4 + 1 + 1 + 4;

/// A forward-only cursor over reply wire bytes: every read is
/// bounds-checked and yields a typed [`ServeError::Corrupt`] on
/// truncation, so the decoder stays total under arbitrary damage.
struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        WireReader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(ServeError::Corrupt(format!(
                "frame reply truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        // apc-lint: allow(unwrap-in-lib): take(4) returned exactly 4 bytes
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        // apc-lint: allow(unwrap-in-lib): take(8) returned exactly 8 bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, ServeError> {
        // apc-lint: allow(unwrap-in-lib): take(4) returned exactly 4 bytes
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

/// A decoded fraction/tolerance must be a finite value the encoder could
/// have produced; bit flips that land in NaN/Inf/negative space are
/// damage, not parameters.
fn checked_fraction(v: f32, what: &str, max: f32) -> Result<f32, ServeError> {
    if v.is_finite() && (0.0..=max).contains(&v) {
        Ok(v)
    } else {
        Err(ServeError::Corrupt(format!(
            "frame reply {what} {v} outside [0, {max}]"
        )))
    }
}

fn decode_fidelity(r: &mut WireReader<'_>) -> Result<Fidelity, ServeError> {
    match r.u8()? {
        FID_FULL => Ok(Fidelity::Full),
        FID_LOSSY => Ok(Fidelity::Lossy {
            tolerance: checked_fraction(r.f32()?, "lossy tolerance", f32::MAX)?,
        }),
        FID_DROPPED => Ok(Fidelity::Dropped {
            keep_percent: checked_fraction(r.f32()?, "keep percent", 100.0)?,
            tolerance: checked_fraction(r.f32()?, "drop tolerance", f32::MAX)?,
        }),
        FID_HEADER_ONLY => Ok(Fidelity::HeaderOnly),
        other => Err(ServeError::Corrupt(format!("unknown fidelity tag {other}"))),
    }
}

fn decode_bool(r: &mut WireReader<'_>, what: &str) -> Result<bool, ServeError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(ServeError::Corrupt(format!(
            "frame reply {what} byte is {other}, not 0/1"
        ))),
    }
}

impl FrameReply {
    /// Frames carried by the reply.
    pub fn frames(&self) -> &[ServedFrame] {
        match self {
            FrameReply::Frames { frames, .. } => frames,
            _ => &[],
        }
    }

    /// Whether the reply answers the request exactly as asked.
    pub fn exact(&self) -> bool {
        matches!(self, FrameReply::Frames { exact: true, .. })
    }

    /// The most degraded fidelity across the reply's frames ([`Fidelity::Full`]
    /// for frameless replies) — what a client records as "how good was
    /// this answer".
    pub fn worst_fidelity(&self) -> Fidelity {
        self.frames()
            .iter()
            .fold(Fidelity::Full, |acc, f| acc.worst(f.fidelity))
    }

    /// Serialize to the tagged wire form. The encoded length equals
    /// [`Meter::nbytes`], so a reply costs on the virtual wire exactly
    /// what its bytes occupy on a real one.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.nbytes());
        match self {
            FrameReply::Frames { exact, frames } => {
                out.push(REPLY_FRAMES);
                out.push(u8::from(*exact));
                out.extend_from_slice(&(frames.len() as u32).to_le_bytes());
                for f in frames {
                    out.extend_from_slice(&f.iteration.to_le_bytes());
                    out.extend_from_slice(&f.stager.to_le_bytes());
                    out.push(u8::from(f.cache_hit));
                    f.fidelity.encode_into(&mut out);
                    out.extend_from_slice(&(f.stream.len() as u32).to_le_bytes());
                    out.extend_from_slice(&f.stream);
                }
            }
            FrameReply::NotYet => out.push(REPLY_NOT_YET),
            FrameReply::NoSuchIteration(it) => {
                out.push(REPLY_NO_SUCH);
                out.extend_from_slice(&it.to_le_bytes());
            }
        }
        debug_assert_eq!(out.len(), self.nbytes(), "reply wire/meter drift");
        out
    }

    /// Parse a reply off the wire. Decoding is total — truncated,
    /// oversized, bit-flipped or semantically impossible bytes (a frame
    /// count no payload of this length could hold, a non-boolean flag, a
    /// NaN tolerance) come back as [`ServeError::Corrupt`], never as a
    /// panic and never as an unbounded allocation.
    pub fn decode(bytes: &[u8]) -> Result<Self, ServeError> {
        let mut r = WireReader::new(bytes);
        let tag = r.u8().map_err(|_| {
            ServeError::Corrupt("empty frame reply".into()) // empty wire image
        })?;
        let reply = match tag {
            REPLY_FRAMES => {
                let exact = decode_bool(&mut r, "exact")?;
                let count = r.u32()? as usize;
                if count.saturating_mul(MIN_FRAME_WIRE) > r.remaining() {
                    return Err(ServeError::Corrupt(format!(
                        "frame reply claims {count} frames but only {} payload bytes remain",
                        r.remaining()
                    )));
                }
                let mut frames = Vec::with_capacity(count);
                for _ in 0..count {
                    let iteration = r.u64()?;
                    let stager = r.u32()?;
                    let cache_hit = decode_bool(&mut r, "cache_hit")?;
                    let fidelity = decode_fidelity(&mut r)?;
                    let stream_len = r.u32()? as usize;
                    let stream = r.take(stream_len)?.to_vec();
                    frames.push(ServedFrame {
                        iteration,
                        stager,
                        cache_hit,
                        fidelity,
                        stream,
                    });
                }
                FrameReply::Frames { exact, frames }
            }
            REPLY_NOT_YET => FrameReply::NotYet,
            REPLY_NO_SUCH => FrameReply::NoSuchIteration(r.u64()?),
            other => {
                return Err(ServeError::Corrupt(format!(
                    "unknown frame reply tag {other}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(ServeError::Corrupt(format!(
                "frame reply has {} trailing bytes after tag {tag}",
                r.remaining()
            )));
        }
        Ok(reply)
    }
}

impl Meter for FrameReply {
    fn nbytes(&self) -> usize {
        match self {
            FrameReply::Frames { frames, .. } => {
                // tag + exact + count + frames.
                1 + 1 + 4 + frames.iter().map(Meter::nbytes).sum::<usize>()
            }
            FrameReply::NotYet => 1,
            FrameReply::NoSuchIteration(_) => 1 + 8,
        }
    }
}

/// What a serving stager does with a request whose frame has not been
/// rendered yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePolicy {
    /// Defer the reply until the frame exists; the client's latency
    /// absorbs the production wait. Every answer is exact.
    WaitForFrame,
    /// Answer immediately with the newest rendered frame (`exact =
    /// false`), or [`FrameReply::NotYet`] when nothing has been rendered.
    BestEffort,
}

impl ServePolicy {
    /// Short stable name for CSV/report rows.
    pub fn name(&self) -> &'static str {
        match self {
            ServePolicy::WaitForFrame => "wait-for-frame",
            ServePolicy::BestEffort => "best-effort",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sizes_scale_with_operands() {
        assert_eq!(FrameRequest::Latest.nbytes(), 1);
        assert_eq!(FrameRequest::AtIteration(5).nbytes(), 9);
        assert_eq!(FrameRequest::Range { start: 1, end: 4 }.nbytes(), 17);
    }

    fn served(iteration: u64, fidelity: Fidelity, stream: Vec<u8>) -> ServedFrame {
        ServedFrame {
            iteration,
            stager: 0,
            cache_hit: iteration.is_multiple_of(2),
            fidelity,
            stream,
        }
    }

    #[test]
    fn reply_meters_its_streams() {
        let frame = ServedFrame {
            iteration: 3,
            stager: 0,
            cache_hit: true,
            fidelity: Fidelity::Full,
            stream: vec![0; 100],
        };
        // 8 iteration + 4 stager + 1 cache_hit + 1 fidelity tag +
        // 4 stream_len + 100 stream.
        assert_eq!(frame.nbytes(), 118);
        let reply = FrameReply::Frames {
            exact: true,
            frames: vec![frame.clone(), frame],
        };
        assert_eq!(reply.nbytes(), 6 + 2 * 118);
        assert_eq!(FrameReply::NotYet.nbytes(), 1);
        assert_eq!(FrameReply::NoSuchIteration(9).nbytes(), 9);
        // Parameterized fidelities widen the frame by their operands.
        assert_eq!(
            served(0, Fidelity::Lossy { tolerance: 0.5 }, vec![0; 10]).nbytes(),
            8 + 4 + 1 + 5 + 4 + 10
        );
        assert_eq!(
            served(
                0,
                Fidelity::Dropped {
                    keep_percent: 25.0,
                    tolerance: 0.1
                },
                vec![]
            )
            .nbytes(),
            8 + 4 + 1 + 9 + 4
        );
    }

    #[test]
    fn reply_accessors() {
        let reply = FrameReply::Frames {
            exact: true,
            frames: vec![ServedFrame {
                iteration: 1,
                stager: 0,
                cache_hit: false,
                fidelity: Fidelity::Full,
                stream: vec![],
            }],
        };
        assert_eq!(reply.frames().len(), 1);
        assert!(reply.exact());
        assert!(!FrameReply::NotYet.exact());
        assert!(FrameReply::NotYet.frames().is_empty());
        assert!(!FrameReply::NoSuchIteration(2).exact());
    }

    #[test]
    fn fidelity_ladder_bands() {
        assert_eq!(Fidelity::for_percent(0.0), Fidelity::Full);
        assert_eq!(Fidelity::for_percent(-3.0), Fidelity::Full);
        assert_eq!(Fidelity::for_percent(0.5), Fidelity::Full);
        assert!(matches!(
            Fidelity::for_percent(10.0),
            Fidelity::Lossy { .. }
        ));
        assert!(matches!(
            Fidelity::for_percent(70.0),
            Fidelity::Dropped { .. }
        ));
        assert_eq!(Fidelity::for_percent(95.0), Fidelity::HeaderOnly);
        assert_eq!(Fidelity::for_percent(1e9), Fidelity::HeaderOnly);

        // Lossy tolerance grows monotonically with pressure; Dropped
        // keeps less as pressure rises.
        let (t_low, t_high) = match (Fidelity::for_percent(5.0), Fidelity::for_percent(45.0)) {
            (Fidelity::Lossy { tolerance: a }, Fidelity::Lossy { tolerance: b }) => (a, b),
            other => panic!("expected lossy rungs, got {other:?}"),
        };
        assert!(t_low < t_high, "{t_low} !< {t_high}");
        match (Fidelity::for_percent(55.0), Fidelity::for_percent(85.0)) {
            (
                Fidelity::Dropped {
                    keep_percent: a, ..
                },
                Fidelity::Dropped {
                    keep_percent: b, ..
                },
            ) => assert!(a > b, "{a} !> {b}"),
            other => panic!("expected dropped rungs, got {other:?}"),
        }
    }

    #[test]
    fn fidelity_worst_orders_by_rung() {
        let lossy = Fidelity::Lossy { tolerance: 0.1 };
        let dropped = Fidelity::Dropped {
            keep_percent: 10.0,
            tolerance: 0.1,
        };
        assert_eq!(Fidelity::Full.worst(lossy), lossy);
        assert_eq!(lossy.worst(Fidelity::Full), lossy);
        assert_eq!(dropped.worst(Fidelity::HeaderOnly), Fidelity::HeaderOnly);
        assert_eq!(Fidelity::Full.worst(Fidelity::Full), Fidelity::Full);
        for (f, name) in [
            (Fidelity::Full, "full"),
            (lossy, "lossy"),
            (dropped, "dropped"),
            (Fidelity::HeaderOnly, "header-only"),
        ] {
            assert_eq!(f.name(), name);
        }
    }

    fn reply_cases() -> Vec<FrameReply> {
        vec![
            FrameReply::Frames {
                exact: true,
                frames: vec![],
            },
            FrameReply::Frames {
                exact: false,
                frames: vec![served(4, Fidelity::Full, vec![1, 2, 3])],
            },
            FrameReply::Frames {
                exact: true,
                frames: vec![
                    served(1, Fidelity::Lossy { tolerance: 0.25 }, vec![9; 40]),
                    served(
                        2,
                        Fidelity::Dropped {
                            keep_percent: 12.5,
                            tolerance: 0.1,
                        },
                        vec![7; 8],
                    ),
                    served(3, Fidelity::HeaderOnly, vec![]),
                ],
            },
            FrameReply::NotYet,
            FrameReply::NoSuchIteration(u64::MAX),
        ]
    }

    #[test]
    fn reply_codec_round_trips_and_matches_meter() {
        for reply in reply_cases() {
            let wire = reply.encode();
            assert_eq!(wire.len(), reply.nbytes(), "{reply:?} wire/meter mismatch");
            assert_eq!(FrameReply::decode(&wire).unwrap(), reply);
        }
    }

    #[test]
    fn reply_decode_rejects_empty_and_unknown_tags() {
        assert!(FrameReply::decode(&[]).is_err());
        for tag in [0u8, 4, 9, 0xff] {
            let err = FrameReply::decode(&[tag]).unwrap_err();
            assert!(matches!(err, ServeError::Corrupt(_)), "tag {tag}: {err}");
        }
    }

    #[test]
    fn reply_decode_rejects_every_truncation() {
        for reply in reply_cases() {
            let wire = reply.encode();
            for cut in 0..wire.len() {
                let err = FrameReply::decode(&wire[..cut]).unwrap_err();
                assert!(
                    matches!(err, ServeError::Corrupt(_)),
                    "{reply:?} cut at {cut} must be Corrupt, got {err}"
                );
            }
        }
    }

    #[test]
    fn reply_decode_rejects_trailing_bytes() {
        for reply in reply_cases() {
            let mut wire = reply.encode();
            wire.push(0);
            let err = FrameReply::decode(&wire).unwrap_err();
            assert!(matches!(err, ServeError::Corrupt(_)), "{reply:?}: {err}");
        }
    }

    #[test]
    fn reply_decode_bounds_claimed_frame_counts() {
        // A frames header promising more frames than the payload could
        // possibly hold must fail before allocating for them.
        let mut wire = Vec::new();
        wire.push(1u8); // REPLY_FRAMES
        wire.push(1u8); // exact
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = FrameReply::decode(&wire).unwrap_err();
        match err {
            ServeError::Corrupt(msg) => assert!(msg.contains("claims"), "{msg}"),
            other => panic!("expected Corrupt, got {other}"),
        }
    }

    #[test]
    fn reply_decode_rejects_non_finite_fidelity_params() {
        for fid in [
            Fidelity::Lossy {
                tolerance: f32::NAN,
            },
            Fidelity::Lossy { tolerance: -1.0 },
            Fidelity::Dropped {
                keep_percent: 120.0,
                tolerance: 0.1,
            },
            Fidelity::Dropped {
                keep_percent: f32::INFINITY,
                tolerance: 0.1,
            },
        ] {
            let reply = FrameReply::Frames {
                exact: true,
                frames: vec![served(0, fid, vec![])],
            };
            let err = FrameReply::decode(&reply.encode()).unwrap_err();
            assert!(matches!(err, ServeError::Corrupt(_)), "{fid:?}: {err}");
        }
    }

    #[test]
    fn reply_decode_survives_single_bit_flips() {
        // Bit-flipped replies either decode to some valid reply or fail
        // as Corrupt; they never panic and never over-allocate. The
        // invariant under attack is totality, not detection.
        for reply in reply_cases() {
            let wire = reply.encode();
            for byte in 0..wire.len() {
                for bit in 0..8 {
                    let mut flipped = wire.clone();
                    flipped[byte] ^= 1 << bit;
                    let _ = FrameReply::decode(&flipped);
                }
            }
        }
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(ServePolicy::WaitForFrame.name(), "wait-for-frame");
        assert_eq!(ServePolicy::BestEffort.name(), "best-effort");
    }

    #[test]
    fn request_codec_round_trips_and_matches_meter() {
        let cases = [
            FrameRequest::Latest,
            FrameRequest::AtIteration(0),
            FrameRequest::AtIteration(u64::MAX),
            FrameRequest::Range { start: 0, end: 0 },
            FrameRequest::Range {
                start: 7,
                end: u64::MAX,
            },
        ];
        for req in cases {
            let wire = req.encode();
            assert_eq!(wire.len(), req.nbytes(), "{req:?} wire/meter mismatch");
            assert_eq!(FrameRequest::decode(&wire).unwrap(), req);
        }
    }

    #[test]
    fn decode_rejects_empty_and_unknown_tags() {
        assert!(FrameRequest::decode(&[]).is_err());
        for tag in [0u8, 4, 7, 0xff] {
            let err = FrameRequest::decode(&[tag]).unwrap_err();
            assert!(matches!(err, ServeError::Corrupt(_)), "tag {tag}: {err}");
        }
    }

    #[test]
    fn decode_rejects_every_truncation() {
        for req in [
            FrameRequest::AtIteration(123),
            FrameRequest::Range { start: 3, end: 9 },
        ] {
            let wire = req.encode();
            for cut in 1..wire.len() {
                let err = FrameRequest::decode(&wire[..cut]).unwrap_err();
                assert!(
                    matches!(err, ServeError::Corrupt(_)),
                    "{req:?} cut at {cut} must be Corrupt, got {err}"
                );
            }
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        for req in [
            FrameRequest::Latest,
            FrameRequest::AtIteration(5),
            FrameRequest::Range { start: 1, end: 2 },
        ] {
            let mut wire = req.encode();
            wire.push(0);
            let err = FrameRequest::decode(&wire).unwrap_err();
            assert!(matches!(err, ServeError::Corrupt(_)), "{req:?}: {err}");
        }
    }

    #[test]
    fn decode_rejects_inverted_range_as_typed_error() {
        // A well-formed wire image whose semantics are impossible: the
        // decoder must hand back a typed error, not a request the server
        // has to defend against (and certainly not a panic).
        let mut wire = Vec::new();
        wire.push(3u8);
        wire.extend_from_slice(&10u64.to_le_bytes());
        wire.extend_from_slice(&3u64.to_le_bytes());
        let err = FrameRequest::decode(&wire).unwrap_err();
        match err {
            ServeError::Corrupt(msg) => assert!(msg.contains("inverted"), "{msg}"),
            other => panic!("expected Corrupt, got {other}"),
        }
    }

    #[test]
    fn decode_survives_single_bit_flips() {
        // Bit-flipped requests either decode to some valid request or
        // fail as Corrupt; they never panic. Flipping the tag byte of an
        // equal-length variant can legitimately produce a different valid
        // request — the invariant under attack is totality, not detection.
        for req in [
            FrameRequest::Latest,
            FrameRequest::AtIteration(99),
            FrameRequest::Range { start: 4, end: 40 },
        ] {
            let wire = req.encode();
            for byte in 0..wire.len() {
                for bit in 0..8 {
                    let mut flipped = wire.clone();
                    flipped[byte] ^= 1 << bit;
                    let _ = FrameRequest::decode(&flipped);
                }
            }
        }
    }
}

//! Fidelity degradation of encoded frame streams.
//!
//! The adaptive serving executor walks the [`Fidelity`] ladder under
//! latency pressure; this module does the actual byte work for each
//! rung: decode the rendered stream, degrade, re-encode. All three
//! degradations are deterministic pure functions of `(stream, fidelity)`
//! — the same inputs produce the same bytes on every rank and every
//! replay, which is what lets degraded runs stay byte-identical across
//! exec policies.
//!
//! * [`Fidelity::Lossy`] re-encodes the pixels through
//!   `Zfpx { tolerance }` (the `apc-compress` fixed-accuracy codec):
//!   every pixel survives, but only to within the tolerance.
//! * [`Fidelity::Dropped`] keeps only the top `keep_percent` of pixels
//!   by reflectivity score (ties broken by pixel index, so the selection
//!   is total), zeroes the rest, and re-encodes through `Zfpx` — zfpx
//!   stores all-zero blocks in one bit, so the dropped footprint costs
//!   almost nothing on the wire.
//! * [`Fidelity::HeaderOnly`] ships a 0×0 frame whose header still
//!   carries the provenance (iteration, stager, triangles, percent).

use apc_store::CodecKind;

use crate::{Fidelity, Frame, ServeError};

/// Re-encode an encoded frame stream at the requested fidelity.
///
/// [`Fidelity::Full`] is the identity (byte-for-byte); every other rung
/// decodes, degrades and re-encodes. Errors are the stream's, not the
/// ladder's: a corrupt input surfaces as [`ServeError::Corrupt`].
pub fn degrade_stream(stream: &[u8], fidelity: Fidelity) -> Result<Vec<u8>, ServeError> {
    match fidelity {
        Fidelity::Full => Ok(stream.to_vec()),
        Fidelity::Lossy { tolerance } => {
            let frame = Frame::decode(stream)?;
            Ok(frame.encode(CodecKind::Zfpx { tolerance }))
        }
        Fidelity::Dropped {
            keep_percent,
            tolerance,
        } => {
            let mut frame = Frame::decode(stream)?;
            drop_low_scores(&mut frame.pixels, keep_percent);
            Ok(frame.encode(CodecKind::Zfpx { tolerance }))
        }
        Fidelity::HeaderOnly => {
            let frame = Frame::decode(stream)?;
            let header = Frame::new(frame.iteration, frame.stager, 0, 0, Vec::new())
                .with_render_info(frame.triangles, frame.percent);
            Ok(header.encode(CodecKind::Raw))
        }
    }
}

/// Zero every pixel outside the top `keep_percent` by score. The keep
/// count rounds up, so any positive percentage keeps at least one pixel;
/// rank ties break by pixel index, keeping the selection deterministic
/// on constant images.
fn drop_low_scores(pixels: &mut [f32], keep_percent: f32) {
    let n = pixels.len();
    if n == 0 {
        return;
    }
    let kp = if keep_percent.is_finite() {
        f64::from(keep_percent).clamp(0.0, 100.0)
    } else {
        0.0
    };
    let keep = ((kp / 100.0 * n as f64).ceil() as usize).min(n);
    if keep == n {
        return;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| pixels[b].total_cmp(&pixels[a]).then(a.cmp(&b)));
    for &i in &order[keep..] {
        pixels[i] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        let pixels: Vec<f32> = (0..64).map(|i| (i as f32 * 0.31).sin() * 40.0).collect();
        Frame::new(700, 2, 8, 8, pixels).with_render_info(4242, 35.0)
    }

    #[test]
    fn full_fidelity_is_identity() {
        let stream = sample().encode(CodecKind::Fpz);
        assert_eq!(degrade_stream(&stream, Fidelity::Full).unwrap(), stream);
    }

    #[test]
    fn lossy_rung_stays_within_tolerance_envelope() {
        let frame = sample();
        let stream = frame.encode(CodecKind::Fpz);
        let degraded = degrade_stream(&stream, Fidelity::Lossy { tolerance: 0.5 }).unwrap();
        let back = Frame::decode(&degraded).unwrap();
        assert_eq!(back.iteration, frame.iteration);
        assert_eq!(back.triangles, frame.triangles);
        for (a, b) in frame.pixels.iter().zip(&back.pixels) {
            // Separable lifting can amplify truncation error by a small
            // constant; 4× tolerance is the codec's own envelope.
            assert!((a - b).abs() <= 4.0 * 0.5, "{a} vs {b}");
        }
    }

    #[test]
    fn dropped_rung_keeps_only_the_top_scores() {
        let frame = sample();
        let stream = frame.encode(CodecKind::Raw);
        let degraded = degrade_stream(
            &stream,
            Fidelity::Dropped {
                keep_percent: 25.0,
                tolerance: 1e-4,
            },
        )
        .unwrap();
        let back = Frame::decode(&degraded).unwrap();
        // The keep threshold: pixels at or above the 16th-highest score
        // survive (to within codec tolerance), the rest decode ≈ 0.
        let mut sorted = frame.pixels.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let cutoff = sorted[15];
        let survivors = back.pixels.iter().filter(|p| p.abs() > 1.0).count();
        assert_eq!(survivors, 16, "25% of 64 pixels survive");
        for (orig, deg) in frame.pixels.iter().zip(&back.pixels) {
            if *orig > cutoff {
                assert!((orig - deg).abs() < 1.0, "kept pixel {orig} became {deg}");
            }
        }
    }

    #[test]
    fn dropped_rung_is_deterministic_on_ties() {
        let frame = Frame::new(1, 0, 4, 4, vec![7.0; 16]);
        let stream = frame.encode(CodecKind::Raw);
        let fid = Fidelity::Dropped {
            keep_percent: 50.0,
            tolerance: 1e-4,
        };
        let a = degrade_stream(&stream, fid).unwrap();
        let b = degrade_stream(&stream, fid).unwrap();
        assert_eq!(a, b);
        // Ties break by index: the *first* half survives.
        let back = Frame::decode(&a).unwrap();
        for (i, p) in back.pixels.iter().enumerate() {
            if i < 8 {
                assert!((p - 7.0).abs() < 0.1, "pixel {i} = {p}");
            } else {
                assert!(p.abs() < 0.1, "pixel {i} = {p}");
            }
        }
    }

    #[test]
    fn header_only_rung_keeps_provenance_and_sheds_pixels() {
        let frame = sample();
        let stream = frame.encode(CodecKind::Fpz);
        let degraded = degrade_stream(&stream, Fidelity::HeaderOnly).unwrap();
        assert!(degraded.len() < stream.len());
        let back = Frame::decode(&degraded).unwrap();
        assert_eq!(back.iteration, frame.iteration);
        assert_eq!(back.stager, frame.stager);
        assert_eq!(back.triangles, frame.triangles);
        assert_eq!(back.percent, frame.percent);
        assert_eq!((back.width, back.height), (0, 0));
        assert!(back.pixels.is_empty());
    }

    #[test]
    fn degraded_streams_shrink_down_the_ladder() {
        let stream = sample().encode(CodecKind::Raw);
        let lossy = degrade_stream(&stream, Fidelity::Lossy { tolerance: 0.5 })
            .unwrap()
            .len();
        let dropped = degrade_stream(
            &stream,
            Fidelity::Dropped {
                keep_percent: 10.0,
                tolerance: 0.5,
            },
        )
        .unwrap()
        .len();
        let header = degrade_stream(&stream, Fidelity::HeaderOnly).unwrap().len();
        assert!(
            lossy < stream.len(),
            "lossy {lossy} vs full {}",
            stream.len()
        );
        assert!(dropped <= lossy, "dropped {dropped} vs lossy {lossy}");
        assert!(header <= dropped, "header {header} vs dropped {dropped}");
    }

    #[test]
    fn corrupt_input_surfaces_as_corrupt() {
        for fid in [Fidelity::Lossy { tolerance: 0.1 }, Fidelity::HeaderOnly] {
            assert!(matches!(
                degrade_stream(&[0xde, 0xad], fid),
                Err(ServeError::Corrupt(_))
            ));
        }
    }

    #[test]
    fn drop_low_scores_edge_percentages() {
        let mut all = vec![1.0, 2.0, 3.0, 4.0];
        drop_low_scores(&mut all, 100.0);
        assert_eq!(all, vec![1.0, 2.0, 3.0, 4.0]);
        let mut none = vec![1.0, 2.0, 3.0, 4.0];
        drop_low_scores(&mut none, 0.0);
        assert_eq!(none, vec![0.0; 4]);
        let mut tiny = vec![1.0, 5.0, 3.0];
        drop_low_scores(&mut tiny, 1.0); // rounds up: keeps the best pixel
        assert_eq!(tiny, vec![0.0, 5.0, 0.0]);
        let mut nan_kp = vec![1.0, 2.0];
        drop_low_scores(&mut nan_kp, f32::NAN); // saturates to keep-none
        assert_eq!(nan_kp, vec![0.0, 0.0]);
        let mut empty: Vec<f32> = vec![];
        drop_low_scores(&mut empty, 50.0);
        assert!(empty.is_empty());
    }
}

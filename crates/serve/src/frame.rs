//! The frame payload and its self-describing byte encoding.
//!
//! A frame stream is `[1-byte version][fixed header][tagged pixel chunk]`.
//! The pixel chunk reuses [`CodecKind::encode_chunk`] with shape
//! `width × height × 1`, so every `apc-compress` codec — and its
//! self-describing one-byte tag — applies to frames unchanged: lossless
//! kinds replay pixels bit-exactly, `zfpx` trades exactness for size.
//! Decoding is total: truncated or bit-flipped streams come back as
//! [`ServeError::Corrupt`], never as a panic (mirroring the adversarial
//! contract of `apc-compress` itself).

use apc_grid::Dims3;
use apc_store::CodecKind;

use crate::ServeError;

/// Frame stream format version.
const VERSION: u8 = 1;

/// Byte length of the fixed header that follows the version byte:
/// iteration (u64), stager (u32), width (u32), height (u32),
/// triangles (u64), percent (f64).
const HEADER: usize = 8 + 4 + 4 + 4 + 8 + 8;

/// One stager's rendered output for one iteration: a row-major `f32`
/// plan-view image (the per-block score footprint of the blocks this
/// stager rendered) plus render provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Simulation iteration the frame visualizes.
    pub iteration: u64,
    /// Staging slot that rendered it.
    pub stager: u32,
    pub width: u32,
    pub height: u32,
    /// Triangles the stager's isosurface pass produced for this frame.
    pub triangles: u64,
    /// Reduction percentage the frame was rendered at.
    pub percent: f64,
    /// Row-major `width × height` pixels.
    pub pixels: Vec<f32>,
}

impl Frame {
    pub fn new(iteration: u64, stager: u32, width: u32, height: u32, pixels: Vec<f32>) -> Self {
        assert_eq!(
            pixels.len(),
            width as usize * height as usize,
            "pixel count must match the frame dimensions"
        );
        Self {
            iteration,
            stager,
            width,
            height,
            triangles: 0,
            percent: 0.0,
            pixels,
        }
    }

    /// Attach render provenance (triangle count, reduction percentage).
    pub fn with_render_info(mut self, triangles: u64, percent: f64) -> Self {
        self.triangles = triangles;
        self.percent = percent;
        self
    }

    fn dims(&self) -> Dims3 {
        Dims3::new(self.width as usize, self.height as usize, 1)
    }

    /// Serialize to the self-describing frame stream, compressing the
    /// pixels with `codec`.
    pub fn encode(&self, codec: CodecKind) -> Vec<u8> {
        let chunk = codec.encode_chunk(&self.pixels, self.dims());
        let mut out = Vec::with_capacity(1 + HEADER + chunk.len());
        out.push(VERSION);
        out.extend_from_slice(&self.iteration.to_le_bytes());
        out.extend_from_slice(&self.stager.to_le_bytes());
        out.extend_from_slice(&self.width.to_le_bytes());
        out.extend_from_slice(&self.height.to_le_bytes());
        out.extend_from_slice(&self.triangles.to_le_bytes());
        out.extend_from_slice(&self.percent.to_le_bytes());
        out.extend_from_slice(&chunk);
        out
    }

    /// Parse a frame stream. The pixel chunk's own codec tag drives the
    /// decode, so frames written under any codec are readable.
    pub fn decode(stream: &[u8]) -> Result<Self, ServeError> {
        let Some((&version, rest)) = stream.split_first() else {
            return Err(ServeError::Corrupt("empty frame stream".into()));
        };
        if version != VERSION {
            return Err(ServeError::Corrupt(format!(
                "unsupported frame version {version}"
            )));
        }
        if rest.len() < HEADER {
            return Err(ServeError::Corrupt(format!(
                "frame header truncated: {} of {HEADER} bytes",
                rest.len()
            )));
        }
        let (header, chunk) = rest.split_at(HEADER);
        // apc-lint: allow(unwrap-in-lib): header is exactly HEADER bytes (length-checked above); fixed-width sub-slices cannot fail
        let u64_at = |o: usize| u64::from_le_bytes(header[o..o + 8].try_into().unwrap());
        // apc-lint: allow(unwrap-in-lib): header is exactly HEADER bytes (length-checked above); fixed-width sub-slices cannot fail
        let u32_at = |o: usize| u32::from_le_bytes(header[o..o + 4].try_into().unwrap());
        let iteration = u64_at(0);
        let stager = u32_at(8);
        let width = u32_at(12);
        let height = u32_at(16);
        let triangles = u64_at(20);
        // apc-lint: allow(unwrap-in-lib): header is exactly HEADER bytes (length-checked above); the 8-byte sub-slice cannot fail
        let percent = f64::from_le_bytes(header[28..36].try_into().unwrap());
        let npixels = (width as usize).checked_mul(height as usize).filter(|&n| {
            // A bit-flipped dimension must not turn into a huge allocation.
            n <= 1 << 28
        });
        let Some(npixels) = npixels else {
            return Err(ServeError::Corrupt(format!(
                "implausible frame dimensions {width}x{height}"
            )));
        };
        if !percent.is_finite() {
            return Err(ServeError::Corrupt(
                "frame percent field is not finite".into(),
            ));
        }
        let dims = Dims3::new(width as usize, height as usize, 1);
        let pixels = CodecKind::default().decode_chunk(chunk, dims)?;
        debug_assert_eq!(pixels.len(), npixels);
        Ok(Self {
            iteration,
            stager,
            width,
            height,
            triangles,
            percent,
            pixels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        let pixels: Vec<f32> = (0..48).map(|i| (i as f32 * 0.7).sin() * 30.0).collect();
        Frame::new(420, 3, 8, 6, pixels).with_render_info(12345, 62.5)
    }

    #[test]
    fn lossless_codecs_roundtrip_bit_exact() {
        let frame = sample();
        for codec in [CodecKind::Raw, CodecKind::Fpz, CodecKind::Lz] {
            let back = Frame::decode(&frame.encode(codec)).unwrap();
            assert_eq!(back, frame, "{}", codec.name());
            for (a, b) in frame.pixels.iter().zip(&back.pixels) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn zfpx_roundtrips_within_tolerance() {
        let frame = sample();
        let back = Frame::decode(&frame.encode(CodecKind::Zfpx { tolerance: 0.01 })).unwrap();
        assert_eq!(back.iteration, frame.iteration);
        assert_eq!(back.triangles, frame.triangles);
        for (a, b) in frame.pixels.iter().zip(&back.pixels) {
            assert!((a - b).abs() < 0.1, "{a} vs {b}");
        }
    }

    #[test]
    fn header_fields_survive() {
        let back = Frame::decode(&sample().encode(CodecKind::Raw)).unwrap();
        assert_eq!(back.iteration, 420);
        assert_eq!(back.stager, 3);
        assert_eq!((back.width, back.height), (8, 6));
        assert_eq!(back.triangles, 12345);
        assert_eq!(back.percent, 62.5);
    }

    /// Truncation at *every* prefix length is an error, never a panic —
    /// the same sweep `compress/tests/adversarial.rs` runs on raw codec
    /// streams.
    #[test]
    fn every_truncation_is_corrupt_not_panic() {
        for codec in [CodecKind::Raw, CodecKind::Fpz, CodecKind::Lz] {
            let enc = sample().encode(codec);
            for len in 0..enc.len() {
                assert!(
                    Frame::decode(&enc[..len]).is_err(),
                    "{} truncated to {len} bytes must fail to decode",
                    codec.name()
                );
            }
        }
    }

    /// Single-bit flips anywhere in the stream decode to an error or to a
    /// (wrong) frame — never to a panic.
    #[test]
    fn bit_flips_never_panic() {
        let enc = sample().encode(CodecKind::Fpz);
        for pos in 0..enc.len() {
            for bit in [0, 3, 7] {
                let mut bad = enc.clone();
                bad[pos] ^= 1 << bit;
                let _ = Frame::decode(&bad); // must return, not unwind
            }
        }
    }

    #[test]
    fn implausible_dimensions_rejected() {
        let mut enc = sample().encode(CodecKind::Raw);
        // Overwrite width with u32::MAX (1 version + 8 iteration + 4 stager).
        enc[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(Frame::decode(&enc), Err(ServeError::Corrupt(_))));
    }

    #[test]
    #[should_panic(expected = "pixel count must match")]
    fn wrong_pixel_count_rejected() {
        let _ = Frame::new(0, 0, 4, 4, vec![0.0; 3]);
    }
}

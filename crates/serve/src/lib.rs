//! Frame persistence and serving — the layer between the staged in situ
//! pipeline and its viewers.
//!
//! The staged runtime (`apc-stage` / `apc-core`) renders one frame per
//! stager per iteration; before this crate those frames were counted and
//! discarded. Here they become durable, addressable artifacts:
//!
//! * [`Frame`] — a stager's rendered output for one iteration: an `f32`
//!   plan-view image plus provenance (iteration, stager slot, triangle
//!   count, reduction percentage);
//! * [`FrameStore`] — persistence over any [`apc_store::StoreBackend`]
//!   (disk or memory), one key per `(run id, iteration, stager)` with a
//!   per-frame [`apc_store::CodecKind`] codec — lossless codecs replay
//!   frames byte-identically; a [`RunManifest`] document makes a stored
//!   run self-describing;
//! * [`FrameSink`] — the cloneable write handle `apc-core` threads through
//!   `StagedParams::persist` so stagers persist frames as they render;
//! * [`FrameRequest`] / [`FrameReply`] — the deterministic request/reply
//!   protocol served over `apc_comm::bounded`'s reserved serve tags, with
//!   a [`ServePolicy`] deciding what happens when a request races frame
//!   production (wait for the frame, or answer best-effort with the
//!   newest one available);
//! * [`Fidelity`] / [`degrade_stream`] — the reply-fidelity ladder the
//!   adaptive serving executor walks under latency pressure (full →
//!   lossy zfpx re-encode → score-ranked dropping → header-only), plus
//!   the deterministic re-encode that implements each rung;
//! * [`FrameCache`] — the byte-bounded LRU hot-frame cache a serving
//!   stager answers from before falling back to store reads; since PR 8 a
//!   [`FrameKey`]-typed alias of the generalized
//!   `apc_store::cache::ChunkCache` every reader shares.
//!
//! The crate is deliberately runtime-agnostic: it defines payloads,
//! persistence and cache arithmetic, all deterministic; the SPMD serving
//! executor that co-schedules client ranks against the stager pool lives
//! in `apc-core` (`core/src/serving.rs`).
//!
//! ```
//! use apc_serve::{Frame, FrameStore};
//! use apc_store::{CodecKind, MemStore};
//!
//! let store = FrameStore::new(MemStore::new(), "demo");
//! let frame = Frame::new(300, 0, 2, 2, vec![0.0, 1.5, -2.0, 45.0])
//!     .with_render_info(128, 40.0);
//! store.put_frame(&frame, CodecKind::Fpz).unwrap();
//! let back = store.get_frame(300, 0).unwrap();
//! assert_eq!(back, frame); // lossless codec: bit-exact replay
//! ```

pub mod cache;
pub mod degrade;
pub mod frame;
pub mod protocol;
pub mod store;

pub use cache::{FrameCache, FrameKey};
pub use degrade::degrade_stream;
pub use frame::Frame;
pub use protocol::{Fidelity, FrameReply, FrameRequest, ServePolicy, ServedFrame};
pub use store::{frame_key, open_run, FrameSink, FrameStore, RunManifest};

/// Errors of frame persistence and decoding.
#[derive(Debug)]
pub enum ServeError {
    /// The backend failed or the frame key does not exist.
    Store(apc_store::StoreError),
    /// A frame stream is structurally damaged (truncated header,
    /// bit-flipped tag, payload/shape mismatch). Never a panic: corrupt
    /// bytes from disk must surface as data, not as control flow.
    Corrupt(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Store(e) => write!(f, "frame store error: {e}"),
            ServeError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Store(e) => Some(e),
            ServeError::Corrupt(_) => None,
        }
    }
}

impl From<apc_store::StoreError> for ServeError {
    fn from(e: apc_store::StoreError) -> Self {
        // Codec and shape failures inside a chunk payload mean the frame
        // bytes are damaged; everything else is a backend/key problem.
        match e {
            apc_store::StoreError::Codec(c) => ServeError::Corrupt(format!("chunk decode: {c}")),
            apc_store::StoreError::ChunkShape { expected, got } => ServeError::Corrupt(format!(
                "pixel payload holds {got} samples, frame header promises {expected}"
            )),
            apc_store::StoreError::BadMeta(m) => ServeError::Corrupt(m),
            apc_store::StoreError::Shard(m) => ServeError::Corrupt(format!("shard container: {m}")),
            other => ServeError::Store(other),
        }
    }
}

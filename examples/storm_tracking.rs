//! Storm tracking: the paper's end-to-end scenario. A CM1-like simulation
//! alternates compute phases (a real advection–diffusion solve) with in
//! situ visualization under a time budget, while the supercell crosses the
//! domain. Writes per-iteration measurements and a plan-view reflectivity
//! frame every few iterations.
//!
//! ```text
//! cargo run --release --example storm_tracking
//! ```

use std::path::PathBuf;

use insitu::cm1::{AdvectionSolver, ReflectivityDataset};
use insitu::pipeline::{run_experiment, PipelineConfig, Redistribution};
use insitu::render::Colormap;

fn main() {
    let out = PathBuf::from("target/storm_tracking");
    std::fs::create_dir_all(&out).expect("create output dir");

    let dataset = ReflectivityDataset::tiny(16, 7).expect("tiny decomposition");
    let iterations = dataset.sample_iterations(12);

    // The "simulation" side: advect a tracer through the storm's wind field
    // between visualization phases (the compute phase CM1 would run).
    let tracer0 =
        insitu::grid::Field3::from_fn(
            dataset.decomp().domain(),
            |_i, _j, k| {
                if k < 2 {
                    1.0
                } else {
                    0.0
                }
            },
        );
    let mut solver = AdvectionSolver::new(tracer0, dataset.storm().clone());

    // The in situ side: budgeted pipeline with redistribution.
    let config = PipelineConfig::default()
        .with_metric("VAR")
        .with_redistribution(Redistribution::RandomShuffle { seed: 7 })
        .with_target(2.5);

    let cmap = Colormap::reflectivity();
    println!("iter  percent  t_total  triangles");
    // Run the visualization pipeline over the replayed timeline; between
    // iterations, advance the solver (the compute phase).
    let reports = run_experiment(&dataset, config, &iterations);
    for (frame, (r, &it)) in reports.iter().zip(&iterations).enumerate() {
        solver.step(it);
        println!(
            "{it:>4}  {:>6.1}%  {:>7.2}  {:>9}",
            r.percent_reduced, r.t_total, r.triangles_total
        );
        if frame % 3 == 0 {
            let field = dataset.field(it);
            let img = cmap.render_column_max(&field);
            img.write_ppm(&out.join(format!("frame_{it:04}.ppm")))
                .expect("write frame");
        }
    }
    println!(
        "\nsolver advanced {} steps; frames written to {}",
        solver.steps_taken(),
        out.display()
    );
}

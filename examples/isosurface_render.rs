//! Isosurface rendering: reproduce the visual comparison of paper Fig 1 —
//! the 45 dBZ reflectivity isosurface from original data and from data
//! with every block reduced to 2x2x2 corner points.
//!
//! ```text
//! cargo run --release --example isosurface_render
//! ```

use std::path::PathBuf;

use insitu::cm1::{ReflectivityDataset, DBZ_ISOVALUE};
use insitu::grid::Block;
use insitu::render::math::Vec3;
use insitu::render::{
    block_isosurface, marching_tetrahedra, Camera, Framebuffer, IsoStats, TriangleMesh,
};

fn main() {
    let out = PathBuf::from("target/isosurface");
    std::fs::create_dir_all(&out).expect("create output dir");

    let dataset = ReflectivityDataset::tiny(16, 42).expect("tiny decomposition");
    let it = dataset.sample_iterations(3)[1];
    let coords = dataset.coords();
    let field = dataset.field(it);

    // Original isosurface over the whole domain.
    let (orig_mesh, orig_stats) =
        marching_tetrahedra(field.as_slice(), field.dims(), DBZ_ISOVALUE, |i, j, k| {
            coords.position(i, j, k)
        });

    // Reduced: every block collapsed to its corners, then rendered.
    let mut red_mesh = TriangleMesh::new();
    let mut red_stats = IsoStats::default();
    for id in dataset.decomp().all_blocks() {
        let ext = dataset.decomp().block_extent(id);
        let block = Block::from_field(id, ext, &field).expect("block in domain");
        let (mesh, stats) = block_isosurface(&block.reduced(), coords, DBZ_ISOVALUE);
        red_mesh.merge(&mesh);
        red_stats.merge(stats);
    }

    let (lo, hi) = coords.bounds();
    let cam = Camera::framing(Vec3::from_array(lo), Vec3::from_array(hi));
    for (name, mesh) in [("original", &orig_mesh), ("reduced", &red_mesh)] {
        let mut fb = Framebuffer::new(800, 600, [10, 10, 22]);
        fb.draw_mesh(mesh, &cam, [235, 235, 240]);
        let path = out.join(format!("isosurface_{name}.ppm"));
        fb.into_image().write_ppm(&path).expect("write image");
        println!(
            "{name:>9}: {:>7} triangles -> {}",
            mesh.triangle_count(),
            path.display()
        );
    }
    println!(
        "reduction kept {:.1}% of the triangles (the paper's Fig 1b blur, \
         50 s -> 1 s of rendering)",
        100.0 * red_stats.triangles as f64 / orig_stats.triangles.max(1) as f64
    );
}

//! Quickstart: run the adaptive in situ visualization pipeline on a small
//! synthetic storm and print the per-iteration measurements.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use insitu::cm1::ReflectivityDataset;
use insitu::pipeline::{run_experiment, IterationReport, PipelineConfig, Redistribution};

fn main() {
    // A small CM1-like dataset: 80x80x16 domain over 16 ranks (threads),
    // 128 blocks of 10x10x8 points.
    let dataset = ReflectivityDataset::tiny(16, 42).expect("tiny decomposition");
    let iterations = dataset.sample_iterations(5);

    // The paper's pipeline: VAR scoring, round-robin redistribution, and a
    // 3-second per-iteration time budget.
    let config = PipelineConfig::default()
        .with_metric("VAR")
        .with_redistribution(Redistribution::RoundRobin)
        .with_target(3.0);

    println!(
        "running {} iterations on 16 virtual ranks...",
        iterations.len()
    );
    let reports = run_experiment(&dataset, config, &iterations);

    println!("{}", IterationReport::csv_header());
    for r in &reports {
        println!("{}", r.to_csv_row());
    }
    let last = reports.last().expect("at least one iteration");
    println!(
        "\nafter adaptation: {:.0}% of blocks reduced, pipeline time {:.2} s \
         (target 3.0 s), rendering {} triangles",
        last.percent_reduced, last.t_total, last.triangles_total
    );
}

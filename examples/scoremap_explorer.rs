//! Scoremap explorer: the tool the paper proposes for guiding metric
//! choice (§V-B) — "we display an image and show how each block part of
//! the image is scored". Renders a scoremap per metric next to the
//! original reflectivity plan view.
//!
//! ```text
//! cargo run --release --example scoremap_explorer [METRIC ...]
//! ```
//!
//! With no arguments, renders the paper's six representative metrics.

use std::path::PathBuf;

use insitu::cm1::ReflectivityDataset;
use insitu::metrics::{by_name, METRIC_NAMES};
use insitu::render::{render_scoremap, Colormap};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if args.is_empty() {
        ["RANGE", "VAR", "ITL", "LEA", "FPZIP", "TRILIN"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args
    };

    let out = PathBuf::from("target/scoremaps");
    std::fs::create_dir_all(&out).expect("create output dir");

    let dataset = ReflectivityDataset::tiny(16, 42).expect("tiny decomposition");
    let it = dataset.sample_iterations(3)[1];

    // The reference image: composite reflectivity.
    let field = dataset.field(it);
    Colormap::reflectivity()
        .render_column_max(&field)
        .write_ppm(&out.join("original_dbz.ppm"))
        .expect("write original");

    for name in &names {
        let Some(metric) = by_name(name) else {
            eprintln!("unknown metric {name:?}; available: {METRIC_NAMES:?}");
            continue;
        };
        let mut scores = Vec::new();
        for rank in 0..dataset.decomp().nranks() {
            for block in dataset.rank_blocks(it, rank) {
                scores.push((block.id, metric.score(&block.samples(), block.dims())));
            }
        }
        let img = render_scoremap(dataset.decomp(), &scores, 16);
        let path = out.join(format!("scoremap_{}.pgm", name.to_lowercase()));
        img.write_pgm(&path).expect("write scoremap");
        let top = scores
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("blocks scored");
        let (bi, bj, bk) = dataset.decomp().block_coords(top.0);
        println!(
            "{name:>10}: top block at grid ({bi},{bj},{bk}) score {:.3} -> {}",
            top.1,
            path.display()
        );
    }
    println!(
        "explore the PGMs in {} (darker = higher score)",
        out.display()
    );
}

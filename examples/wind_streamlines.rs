//! Wind streamlines: the paper's second 3D visualization scenario
//! ("streamlines based on wind vectors", §IV-B), plus the BIL-style
//! store-and-replay workflow of §V-A — the dataset is written to disk once
//! and the visualization kernel reloads blocks from the file.
//!
//! ```text
//! cargo run --release -p insitu --example wind_streamlines
//! ```

use std::path::PathBuf;

use insitu::cm1::{open_dataset, write_dataset, ReflectivityDataset, DBZ_ISOVALUE};
use insitu::render::math::Vec3;
use insitu::render::{
    block_isosurface, seed_grid, trace_streamline, Camera, Framebuffer, StreamlineOptions,
    TriangleMesh,
};
use insitu::store::CodecKind;

fn main() {
    let out = PathBuf::from("target/streamlines");
    std::fs::create_dir_all(&out).expect("create output dir");

    // Store a couple of iterations to disk (the paper's 3-day-run dataset)
    // as a chunked, fpz-compressed store, then reload block by block.
    let dataset = ReflectivityDataset::tiny(16, 42).expect("tiny decomposition");
    let it = dataset.sample_iterations(3)[1];
    let store_dir = out.join("dataset");
    write_dataset(&dataset, &[it], &store_dir, CodecKind::Fpz).expect("store dataset");
    let stored = open_dataset(&store_dir).expect("reload dataset");
    println!("stored iterations: {:?}", stored.iterations());

    // Rebuild the isosurface from the *stored* blocks.
    let mut mesh = TriangleMesh::new();
    for rank in 0..dataset.decomp().nranks() {
        for block in stored.rank_blocks(it, rank).expect("read blocks") {
            let (m, _) = block_isosurface(&block, dataset.coords(), DBZ_ISOVALUE);
            mesh.merge(&m);
        }
    }

    // Trace streamlines of the storm's wind field from a low-level seed
    // grid (normalized coordinates).
    let storm = dataset.storm();
    let tau = storm.tau(it);
    let opts = StreamlineOptions {
        step: 0.5,
        max_steps: 4000,
        ..StreamlineOptions::within([0.0; 3], [1.0; 3])
    };
    let mut lines = Vec::new();
    for seed in seed_grid([0.1, 0.1, 0.0], [0.9, 0.9, 0.0], 9, 9, 0.06) {
        let line = trace_streamline(|p| storm.wind(p, tau), seed, &opts);
        if line.len() > 10 {
            lines.push(line);
        }
    }

    // Compose: isosurface + streamlines in physical coordinates.
    let (lo, hi) = dataset.coords().bounds();
    let to_phys = |p: Vec3| Vec3 {
        x: lo[0] + p.x * (hi[0] - lo[0]),
        y: lo[1] + p.y * (hi[1] - lo[1]),
        z: lo[2] + p.z * (hi[2] - lo[2]),
    };
    let cam = Camera::framing(Vec3::from_array(lo), Vec3::from_array(hi));
    let mut fb = Framebuffer::new(900, 675, [8, 8, 20]);
    fb.draw_mesh(&mesh, &cam, [225, 225, 235]);
    for line in &lines {
        let phys: Vec<Vec3> = line.iter().map(|&p| to_phys(p)).collect();
        fb.draw_polyline(&phys, &cam, [90, 200, 255]);
    }
    let path = out.join("storm_streamlines.ppm");
    fb.into_image().write_ppm(&path).expect("write image");

    println!(
        "{} streamlines around a {}-triangle isosurface -> {}",
        lines.len(),
        mesh.triangle_count(),
        path.display()
    );
}

#!/usr/bin/env bash
# Tier-1 verification entry point — what CI runs and what a PR must keep
# green. Mirrors the "Developing" recipe in README.md.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (umbrella integration tests)"
cargo test -q

echo "==> cargo test --workspace -q (every crate's suite)"
cargo test --workspace -q

echo "==> rustdoc lint (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> compile-check examples and benches"
cargo build --examples --benches --quiet

echo "ci.sh: all green"

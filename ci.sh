#!/usr/bin/env bash
# Tier-1 verification entry point — what CI runs and what a PR must keep
# green. Mirrors the "Developing" recipe in README.md.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> apc-lint (in-tree determinism & safety lint, deny-by-default)"
# Wall-clock reads, hash-order iteration, unannotated unwraps, NaN-unsafe
# comparators, raw thread spawns, and the reserved-tag layout. Diagnostics
# are file:line: rule: message; suppress a site with a reasoned
# `// apc-lint: allow(<rule>): <reason>`. See README "Static analysis".
cargo run -q -p apc-lint

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (umbrella integration tests)"
cargo test -q

echo "==> cargo test --workspace -q (every crate's suite)"
cargo test --workspace -q

echo "==> shard container suite (partial reads + adversarial inputs)"
# Covered by the workspace run above, but named explicitly so a failure
# in the shard layer is impossible to miss in the CI log.
cargo test -q -p apc-store --test sharding --test shard_adversarial

echo "==> chunk cache suite (LRU/readahead units + cache-on/off properties)"
# Also covered by the runs above; named explicitly because the cache's
# transparency contract (byte-identical replay with the cache on vs off,
# Serial vs Threads) is a PR-8 acceptance pin.
cargo test -q -p apc-store --lib cache
cargo test -q --test properties -- cached_backend_is_transparent_under_random_traffic \
  cache_and_prefetch_do_not_perturb_replay

echo "==> replay serving suite (pool routing, stealing, QoS determinism)"
# Covered by the runs above, but named explicitly: byte-identical replay
# across exec policies, session reuse, and frame layouts is the PR-9
# acceptance pin for the standalone replay server pool.
cargo test -q -p apc-replay
cargo test -q --test replay_fanout
cargo test -q -p apc-comm --test session_stress -- replay_server_death stealing_under_churn

echo "==> adaptive serving suite (budget controller, fidelity ladder, wire tag)"
# Covered by the runs above, but named explicitly: byte-identical replay
# of the controller trajectory and fidelity mix across exec policies,
# repeats and session reuse is the PR-10 acceptance pin for
# performance-constrained serving.
cargo test -q -p apc-core --lib -- serving controller stats
cargo test -q -p apc-serve
cargo test -q --test staged_determinism -- adaptive_serving
cargo test -q -p apc-comm --test session_stress -- stager_death_mid_degraded_reply

echo "==> rustdoc lint (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> compile-check examples and benches"
cargo build --examples --benches --quiet

echo "==> perf trajectory gate (kernels bench vs bench_baseline.json)"
# Regenerates target/experiments/bench_kernels.json, then diffs its wall
# times against the committed baseline with a tolerance band (default
# 2.5x slowdown fails; tune with APC_BENCH_TOL). The baseline is only
# meaningful for the machine class it was generated on — regenerate it
# on the enforcing hardware with APC_UPDATE_BASELINE=1 ./ci.sh, and on a
# machine class the baseline does not describe, run with a wider
# APC_BENCH_TOL or APC_PERF_GATE=skip rather than trusting the verdict.
cargo bench -p apc-bench --bench kernels >/dev/null
if [ "${APC_PERF_GATE:-on}" = "skip" ]; then
  echo "perf gate: skipped (APC_PERF_GATE=skip)"
else
  cargo run --release -q -p apc-bench --bin perf_gate
fi

echo "ci.sh: all green"

//! Umbrella crate for the Adaptive Performance-Constrained In Situ
//! Visualization reproduction (Dorier et al., CLUSTER 2016).
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! ```
//! use insitu::grid::Dims3;
//! let d = Dims3::new(4, 4, 4);
//! assert_eq!(d.len(), 64);
//! ```

pub use apc_cm1 as cm1;
pub use apc_comm as comm;
pub use apc_compress as compress;
pub use apc_core as pipeline;
pub use apc_grid as grid;
pub use apc_metrics as metrics;
pub use apc_par as par;
pub use apc_render as render;
pub use apc_replay as replay;
pub use apc_serve as serve;
pub use apc_stage as stage;
pub use apc_store as store;

//! Acceptance guards for the standalone replay serving pool: a session of
//! `[servers][clients]` ranks — zero live sim or stage ranks — serves a
//! persisted run byte-identically across repeats, exec policies, session
//! reuse, and frame layouts; routing gives keys stable homes; stealing
//! moves work without changing a single reply; and QoS tiers split the
//! miss path exactly as specified.

use std::sync::Arc;

use insitu::comm::{NetModel, Runtime};
use insitu::pipeline::{run_replay_serving, run_replay_serving_in_session, ExecPolicy, ReplayRun};
use insitu::replay::{synth_run, ArrivalTrace, PoolParams, QosTier, RouteMode, TraceSpec};
use insitu::store::{CodecKind, MemStore, StoreBackend};

const RUN: &str = "replay-acceptance";
const ITERS: &[usize] = &[100, 200, 300, 400, 500, 600, 700, 800];
const NSERVERS: usize = 4;

fn fixture(shard: Option<usize>) -> Arc<dyn StoreBackend> {
    let backend: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
    synth_run(
        Arc::clone(&backend),
        RUN,
        ITERS,
        NSERVERS,
        16,
        12,
        CodecKind::Fpz,
        shard,
    );
    backend
}

fn trace(clients: usize, seed: u64) -> ArrivalTrace {
    let spec = TraceSpec::new(clients, 10, seed);
    let backend = fixture(None);
    let (_, manifest) = insitu::serve::open_run(backend, RUN).unwrap();
    ArrivalTrace::generate(&spec, &manifest)
}

fn run(
    backend: Arc<dyn StoreBackend>,
    tr: &ArrivalTrace,
    mode: RouteMode,
    exec: ExecPolicy,
) -> ReplayRun {
    let params = PoolParams::new(NSERVERS, mode).with_cache_bytes(8 << 10);
    run_replay_serving(backend, RUN, tr, &params, exec, NetModel::blue_waters())
}

#[test]
fn replay_run_is_byte_identical_across_repeats_and_exec_policies() {
    let tr = trace(12, 7);
    for mode in [
        RouteMode::Pinned,
        RouteMode::Routed,
        RouteMode::RoutedStealing,
    ] {
        let a = run(fixture(None), &tr, mode, ExecPolicy::Serial);
        let b = run(fixture(None), &tr, mode, ExecPolicy::Serial);
        assert_eq!(a, b, "{mode:?}: repeat runs must be byte-identical");
        let c = run(fixture(None), &tr, mode, ExecPolicy::Threads(8));
        assert_eq!(a, c, "{mode:?}: ExecPolicy must not move a byte");
    }
}

#[test]
fn replay_is_identical_across_session_reuse() {
    let tr = trace(8, 3);
    let params = PoolParams::new(NSERVERS, RouteMode::RoutedStealing).with_cache_bytes(8 << 10);
    let backend = fixture(None);
    let mut session = Runtime::new(NSERVERS + tr.clients, NetModel::blue_waters()).session();
    let a = run_replay_serving_in_session(
        &mut session,
        Arc::clone(&backend),
        RUN,
        &tr,
        &params,
        ExecPolicy::Serial,
    );
    let b = run_replay_serving_in_session(
        &mut session,
        Arc::clone(&backend),
        RUN,
        &tr,
        &params,
        ExecPolicy::Serial,
    );
    assert_eq!(a, b, "session reuse must not move a byte");
    let c = run(backend, &tr, RouteMode::RoutedStealing, ExecPolicy::Serial);
    assert_eq!(a, c, "in-session and one-shot must agree");
}

#[test]
fn flat_and_sharded_runs_serve_identical_replies() {
    let tr = trace(10, 11);
    let flat = run(fixture(None), &tr, RouteMode::Routed, ExecPolicy::Serial);
    let sharded = run(fixture(Some(3)), &tr, RouteMode::Routed, ExecPolicy::Serial);
    // Frame streams ride the same codec either way; the shard container
    // is transparent to every observable.
    assert_eq!(flat, sharded, "frame layout must be invisible to replay");
}

#[test]
fn every_request_is_answered_and_verified() {
    let tr = trace(16, 19);
    let out = run(
        fixture(None),
        &tr,
        RouteMode::RoutedStealing,
        ExecPolicy::Serial,
    );
    assert_eq!(out.requests.len(), tr.len(), "one log per recorded arrival");
    for (slot, log) in out.requests.iter().enumerate() {
        assert_eq!(log.slot, slot, "logs come back in trace-slot order");
        assert!(log.latency > 0.0, "latency includes wire + service time");
    }
    assert!(out.frames_served() > 0);
    let served: usize = out.servers.iter().map(|s| s.requests).sum();
    assert_eq!(served, tr.len(), "servers answered every arrival");
    // Per-server cache stats are attributable (satellite: CacheStats per
    // rank, not just aggregate hit counts).
    for s in &out.servers {
        assert_eq!(
            s.cache.hits + s.cache.misses > 0,
            s.frames_served > 0,
            "cache counters track frame reads"
        );
    }
}

#[test]
fn routed_mode_gives_every_key_one_home() {
    let tr = trace(16, 23);
    let out = run(fixture(None), &tr, RouteMode::Routed, ExecPolicy::Serial);
    // Same primary for every occurrence of a frame key — the cache
    // affinity routing exists to create.
    let mut homes: Vec<((u64, u32), usize)> = Vec::new();
    for log in &out.requests {
        let a = &tr.arrivals[log.slot];
        let key = insitu::replay::route_key(a.request, a.stager, ITERS);
        match homes.iter().find(|(k, _)| *k == key) {
            Some((_, home)) => assert_eq!(*home, log.primary, "key {key:?} moved homes"),
            None => homes.push((key, log.primary)),
        }
    }
    assert_eq!(out.stolen_total, 0, "Routed never steals");
}

#[test]
fn stealing_moves_work_but_not_bytes() {
    // A hot seed that funnels arrivals onto few primaries: stealing must
    // fire, and the replies must stay exactly what no-stealing produced.
    let tr = trace(24, 5);
    let routed = run(fixture(None), &tr, RouteMode::Routed, ExecPolicy::Serial);
    let steal = run(
        fixture(None),
        &tr,
        RouteMode::RoutedStealing,
        ExecPolicy::Serial,
    );
    assert!(steal.stolen_total > 0, "burst load must trigger steals");
    assert_eq!(
        steal.servers.iter().map(|s| s.stolen).sum::<usize>(),
        steal.stolen_total
    );
    for (r, s) in routed.requests.iter().zip(&steal.requests) {
        assert_eq!(r.request, s.request);
        assert_eq!(r.frames, s.frames, "stealing must not change reply content");
        assert_eq!(r.exact, s.exact);
        assert_eq!(r.primary, s.primary, "stealing never re-routes primaries");
    }
}

#[test]
fn qos_tiers_split_the_miss_path() {
    let backend = fixture(None);
    let (_, manifest) = insitu::serve::open_run(Arc::clone(&backend), RUN).unwrap();
    // All-premium and all-free traces over the same seed: identical
    // arrival process, opposite miss-path semantics.
    let premium = ArrivalTrace::generate(
        &TraceSpec::new(10, 12, 31)
            .with_premium_share(1.0)
            .with_miss_share(0.3),
        &manifest,
    );
    let free = ArrivalTrace::generate(
        &TraceSpec::new(10, 12, 31)
            .with_premium_share(0.0)
            .with_miss_share(0.3),
        &manifest,
    );
    let params = PoolParams::new(NSERVERS, RouteMode::Routed).with_cache_bytes(8 << 10);
    let p = run_replay_serving(
        Arc::clone(&backend),
        RUN,
        &premium,
        &params,
        ExecPolicy::Serial,
        NetModel::blue_waters(),
    );
    let f = run_replay_serving(
        backend,
        RUN,
        &free,
        &params,
        ExecPolicy::Serial,
        NetModel::blue_waters(),
    );
    // Premium: every inexact answer is a typed error carrying no frames.
    let p_misses = p.requests.iter().filter(|r| !r.exact).count();
    assert!(p_misses > 0, "miss share must generate out-of-run requests");
    for r in p.requests.iter().filter(|r| !r.exact) {
        assert_eq!(r.frames, 0, "premium never gets substitutes");
        assert_eq!(r.tier, QosTier::Premium);
    }
    // Free: out-of-run requests get the newest earlier frame instead.
    let f_subs = f
        .requests
        .iter()
        .filter(|r| !r.exact && r.frames > 0)
        .count();
    assert!(f_subs > 0, "free tier substitutes instead of erroring");
    // Per-tier latency accounting sees both tiers where both exist.
    assert!(p.tier_latency_percentile(QosTier::Premium, 99.0) > 0.0);
    assert!(f.tier_latency_percentile(QosTier::Free, 99.0) > 0.0);
    assert_eq!(p.tier_latency_percentile(QosTier::Free, 99.0), 0.0);
}

#[test]
fn cache_budget_changes_latency_but_never_replies() {
    let tr = trace(12, 13);
    let hot = run(fixture(None), &tr, RouteMode::Routed, ExecPolicy::Serial);
    let cold_params = PoolParams::new(NSERVERS, RouteMode::Routed).with_cache_bytes(0);
    let cold = run_replay_serving(
        fixture(None),
        RUN,
        &tr,
        &cold_params,
        ExecPolicy::Serial,
        NetModel::blue_waters(),
    );
    assert!(
        hot.cache_hit_rate() > 0.0,
        "hot-window skew must produce hits"
    );
    assert_eq!(cold.cache_hit_rate(), 0.0, "budget 0 disables caching");
    for (h, c) in hot.requests.iter().zip(&cold.requests) {
        assert_eq!(h.request, c.request);
        assert_eq!(h.frames, c.frames, "cache must be invisible to content");
        assert_eq!(h.exact, c.exact);
    }
    // All-miss service is never faster.
    assert!(cold.latency_percentile(50.0) >= hot.latency_percentile(50.0));
}

//! Acceptance guards for the staged (dedicated-core, asynchronous) in
//! situ mode:
//!
//! 1. **Determinism.** Staged runs produce byte-identical
//!    [`IterationReport`] streams — and identical staged observables —
//!    across `Serial` vs `Threads(n)` execution policies, across repeated
//!    runs, and across persistent-session reuse, for every backpressure
//!    policy. Asynchrony is modeled in virtual time over fixed receive
//!    orders, so OS scheduling has nothing to perturb.
//! 2. **The point of staging.** At equal total rank count, the staged
//!    mode's simulation-visible in situ time is a small fraction of the
//!    synchronous pipeline's iteration time.
//!
//! The runs go through `run_staged_prepared` (no exec-policy clamp)
//! so the `Threads(n)` comparison is real even on single-core CI hosts —
//! same reasoning as `exec_policy_determinism.rs`.

use std::sync::Arc;

use insitu::cm1::ReflectivityDataset;
use insitu::comm::NetModel;
use insitu::pipeline::{
    run_staged_prepared, run_staged_serving_prepared, BackpressurePolicy, ExecPolicy, Fidelity,
    FrameSink, PipelineConfig, Prepared, ServeParams, ServePolicy, ServingRun, StagedParams,
    StagedRun,
};
use insitu::store::{CodecKind, MemStore};

fn all_policies() -> [BackpressurePolicy; 3] {
    [
        BackpressurePolicy::Block,
        BackpressurePolicy::DropOldest,
        BackpressurePolicy::DegradeHarder { boost: 20.0 },
    ]
}

fn staged_config(policy: BackpressurePolicy, exec: ExecPolicy) -> PipelineConfig {
    // Adaptation on (a live controller is the hardest state to keep in
    // lockstep) and a modest solver compute so queues see real dynamics.
    let params = StagedParams::new(1, 2, policy)
        .with_sim_compute(5.0)
        .with_pre_reduce(10.0);
    PipelineConfig::default()
        .with_target(20.0)
        .with_exec(exec)
        .with_staged(params)
}

fn run_once(policy: BackpressurePolicy, exec: ExecPolicy) -> StagedRun {
    let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
    let iters = dataset.sample_iterations(4);
    run_staged_prepared(
        dataset.decomp(),
        dataset.coords(),
        &staged_config(policy, exec),
        &iters,
        NetModel::blue_waters(),
        |it, rank| dataset.rank_blocks(it, rank),
    )
}

fn assert_bit_identical(a: &StagedRun, b: &StagedRun, label: &str) {
    assert_eq!(a, b, "{label}: staged runs diverged");
    for (x, y) in a.frames.iter().zip(&b.frames) {
        for (p, q) in [
            (x.report.t_score, y.report.t_score),
            (x.report.t_reduce, y.report.t_reduce),
            (x.report.t_redistribute, y.report.t_redistribute),
            (x.report.t_render, y.report.t_render),
            (x.report.t_total, y.report.t_total),
            (x.t_sim_stall, y.t_sim_stall),
            (x.t_sim_visible, y.t_sim_visible),
        ] {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "{label}: virtual time drifted at iteration {}",
                x.report.iteration
            );
        }
    }
}

/// The acceptance pin: `Serial` and `Threads(n)` staged runs are
/// byte-identical, for every backpressure policy.
#[test]
fn staged_reports_identical_across_exec_policies() {
    for policy in all_policies() {
        let serial = run_once(policy, ExecPolicy::Serial);
        let threads = run_once(policy, ExecPolicy::Threads(8));
        assert_bit_identical(&serial, &threads, "Serial vs Threads(8)");
        // Early iterations may predate the storm; the run as a whole must
        // produce geometry.
        assert!(
            serial
                .frames
                .iter()
                .map(|f| f.report.triangles_total)
                .sum::<usize>()
                > 0
        );
    }
}

/// Repeated runs replay bit-identically (fresh sessions each time).
#[test]
fn staged_reports_identical_across_repeated_runs() {
    for policy in all_policies() {
        let a = run_once(policy, ExecPolicy::Serial);
        let b = run_once(policy, ExecPolicy::Serial);
        assert_bit_identical(&a, &b, "repeated run");
    }
}

/// Session reuse through `Prepared` (shared stats cache, persistent rank
/// threads, exec clamp) changes wall-clock only: two staged sweeps over
/// one session match each other and stay internally consistent with a
/// synchronous sweep run through the *same* session in between.
#[test]
fn staged_session_reuse_is_invisible() {
    let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
    let iters = dataset.sample_iterations(3);
    let prepared = Prepared::from_dataset(
        dataset,
        iters.clone(),
        ExecPolicy::Serial,
        NetModel::blue_waters(),
    );
    let params = StagedParams::new(1, 2, BackpressurePolicy::Block).with_sim_compute(5.0);
    let config = PipelineConfig::default()
        .with_fixed_percent(40.0)
        .with_staged(params);

    let first = prepared.run_staged(config.clone(), &iters);
    // Interleave a synchronous run over the same session + cache.
    let sync = prepared.run(PipelineConfig::default().with_fixed_percent(40.0), &iters);
    assert_eq!(sync.len(), iters.len());
    let second = prepared.run_staged(config.clone(), &iters);
    assert_bit_identical(&first, &second, "session reuse");

    // And the sweep-engine dispatch returns exactly the staged reports.
    let swept = prepared.run(config, &iters);
    assert_eq!(
        swept,
        first.reports(),
        "sweep dispatch must match run_staged"
    );
}

/// The headline acceptance: at equal total rank count, staging reduces
/// what the simulation sees of in situ processing to a fraction of the
/// synchronous pipeline time — and with a solver busy enough to overlap,
/// the queue never even stalls.
#[test]
fn staged_mode_cuts_simulation_visible_time() {
    let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
    let iters = dataset.sample_iterations(4);
    let sync = insitu::pipeline::run_experiment(
        &dataset,
        PipelineConfig::default()
            .deterministic()
            .with_fixed_percent(40.0),
        &iters,
    );
    let sync_mean = sync.iter().map(|r| r.t_total).sum::<f64>() / sync.len() as f64;

    let params = StagedParams::new(1, 2, BackpressurePolicy::Block).with_sim_compute(sync_mean);
    let staged = run_staged_prepared(
        dataset.decomp(),
        dataset.coords(),
        &PipelineConfig::default()
            .deterministic()
            .with_fixed_percent(40.0)
            .with_staged(params),
        &iters,
        NetModel::blue_waters(),
        |it, rank| dataset.rank_blocks(it, rank),
    );

    let visible = staged.mean_sim_visible();
    assert!(
        visible < 0.2 * sync_mean,
        "staged sim-visible time {visible:.3} s should be well under the \
         synchronous pipeline's {sync_mean:.3} s"
    );
    assert_eq!(
        staged.mean_sim_stall(),
        0.0,
        "a solver this slow fully hides the stagers"
    );
    assert_eq!(staged.total_dropped(), 0);
}

/// A full serving workload (sims + stagers + clients in one session) for
/// the serving-determinism guards: adaptation on, a request mix that
/// races production, and a fresh `MemStore` per run so nothing persists
/// across runs except what the run itself writes.
fn serving_once(policy: ServePolicy, exec: ExecPolicy) -> ServingRun {
    let serve = ServeParams::new(3, 6, policy)
        .with_think_time(0.1)
        // A deliberately tight byte budget: evictions happen mid-run and
        // must still replay bit-identically.
        .with_cache_bytes(2048);
    serving_once_serve(serve, exec)
}

/// The serving fixture with full control over [`ServeParams`] — the
/// adaptive-serving pins feed budgets and serve costs through here.
fn serving_once_serve(serve: ServeParams, exec: ExecPolicy) -> ServingRun {
    let dataset = ReflectivityDataset::tiny(8, 42).unwrap();
    let iters = dataset.sample_iterations(4);
    let sink = FrameSink::new(Arc::new(MemStore::new()), "det", CodecKind::Fpz);
    let params = StagedParams::new(2, 2, BackpressurePolicy::Block)
        .with_sim_compute(5.0)
        .with_persist(sink);
    let config = PipelineConfig::default()
        .with_target(20.0)
        .with_exec(exec)
        .with_staged(params);
    run_staged_serving_prepared(
        dataset.decomp(),
        dataset.coords(),
        &config,
        &iters,
        &serve,
        NetModel::blue_waters(),
        |it, rank| dataset.rank_blocks(it, rank),
    )
}

/// [`ServeParams`] for the adaptive-serving pins: explicit serve costs
/// plus either no budget (fixed full fidelity) or a deliberately
/// unmeetable one, so the controller must walk the fidelity ladder
/// mid-run.
fn adaptive_serve(policy: ServePolicy, budget: Option<f64>) -> ServeParams {
    let serve = ServeParams::new(3, 6, policy)
        .with_think_time(0.1)
        .with_cache_bytes(2048)
        .with_serve_costs(0.05, 1e-4);
    match budget {
        Some(b) => serve.with_latency_budget(b),
        None => serve,
    }
}

fn assert_serving_bit_identical(a: &ServingRun, b: &ServingRun, label: &str) {
    assert_eq!(a, b, "{label}: serving runs diverged");
    assert_bit_identical(&a.staged, &b.staged, label);
    for (x, y) in a.requests.iter().zip(&b.requests) {
        assert_eq!(
            x.latency.to_bits(),
            y.latency.to_bits(),
            "{label}: service latency drifted for client {}",
            x.client
        );
    }
    for (x, y) in a.client_finish.iter().zip(&b.client_finish) {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: client clock drifted");
    }
}

/// The serving acceptance pin: clients + stagers + sims replay
/// byte-identically across `Serial` vs `Threads(8)`, for both serve
/// policies.
#[test]
fn serving_runs_identical_across_exec_policies() {
    for policy in [ServePolicy::WaitForFrame, ServePolicy::BestEffort] {
        let serial = serving_once(policy, ExecPolicy::Serial);
        let threads = serving_once(policy, ExecPolicy::Threads(8));
        assert_serving_bit_identical(&serial, &threads, "Serial vs Threads(8)");
        assert!(serial.frames_served() > 0);
    }
}

/// Repeated serving runs (fresh sessions, fresh stores) replay
/// bit-identically, for both serve policies.
#[test]
fn serving_runs_identical_across_repeated_runs() {
    for policy in [ServePolicy::WaitForFrame, ServePolicy::BestEffort] {
        let a = serving_once(policy, ExecPolicy::Serial);
        let b = serving_once(policy, ExecPolicy::Serial);
        assert_serving_bit_identical(&a, &b, "repeated serving run");
    }
}

/// Serving through a `Prepared`'s persistent session is invisible:
/// replays match each other and survive an interleaved synchronous run
/// over the same session — for both serve policies.
#[test]
fn serving_session_reuse_is_invisible() {
    let iters = ReflectivityDataset::tiny(8, 42)
        .unwrap()
        .sample_iterations(3);
    let prepared = Prepared::from_dataset(
        ReflectivityDataset::tiny(8, 42).unwrap(),
        iters.clone(),
        ExecPolicy::Serial,
        NetModel::blue_waters(),
    );
    for policy in [ServePolicy::WaitForFrame, ServePolicy::BestEffort] {
        let sink = FrameSink::new(Arc::new(MemStore::new()), "reuse", CodecKind::Fpz);
        let params = StagedParams::new(2, 2, BackpressurePolicy::Block)
            .with_sim_compute(5.0)
            .with_persist(sink);
        let config = PipelineConfig::default()
            .with_fixed_percent(40.0)
            .with_staged(params);
        let serve = ServeParams::new(3, 5, policy).with_think_time(0.1);

        let first = prepared.run_staged_serving(config.clone(), &iters, &serve);
        // Interleave a synchronous run over the same session + cache.
        let sync = prepared.run(PipelineConfig::default().with_fixed_percent(40.0), &iters);
        assert_eq!(sync.len(), iters.len());
        let second = prepared.run_staged_serving(config, &iters, &serve);
        assert_serving_bit_identical(&first, &second, "session reuse");
    }
}

/// Adaptive serving (per-stager `BudgetController` over observed reply
/// latencies, degrading reply fidelity down the ladder) replays
/// byte-identically across exec policies — with the budget on and off,
/// for both serve policies. The tight budget forces mid-run fidelity
/// transitions; the controller state, the degraded re-encodes and every
/// latency they shift must all be pure virtual-time arithmetic.
#[test]
fn adaptive_serving_identical_across_exec_policies() {
    for policy in [ServePolicy::WaitForFrame, ServePolicy::BestEffort] {
        for budget in [None, Some(0.01)] {
            let serve = adaptive_serve(policy, budget);
            let serial = serving_once_serve(serve, ExecPolicy::Serial);
            let threads = serving_once_serve(serve, ExecPolicy::Threads(8));
            assert_serving_bit_identical(&serial, &threads, "adaptive Serial vs Threads(8)");
            match budget {
                None => assert_eq!(
                    serial.degraded_replies(),
                    0,
                    "no budget, no degradation ({})",
                    policy.name()
                ),
                Some(_) => {
                    // The unmeetable budget must actually move the
                    // ladder mid-run: full-fidelity replies before the
                    // controller reacts, degraded ones after.
                    let mix = serial.fidelity_mix();
                    assert!(mix.degraded() > 0, "{}: {mix:?}", policy.name());
                    assert!(mix.full > 0, "{}: {mix:?}", policy.name());
                    assert!(serial.requests.iter().any(|r| r.fidelity != Fidelity::Full));
                }
            }
        }
    }
}

/// Adaptive serving runs repeat bit-identically (fresh sessions, fresh
/// stores), and per-stager controller state lands in the run's
/// observables identically too.
#[test]
fn adaptive_serving_identical_across_repeated_runs() {
    let serve = adaptive_serve(ServePolicy::BestEffort, Some(0.01));
    let a = serving_once_serve(serve, ExecPolicy::Serial);
    let b = serving_once_serve(serve, ExecPolicy::Serial);
    assert_serving_bit_identical(&a, &b, "repeated adaptive serving run");
    for (x, y) in a.servers.iter().zip(&b.servers) {
        assert_eq!(
            x.final_percent.to_bits(),
            y.final_percent.to_bits(),
            "controller state drifted between replays"
        );
    }
}

/// Adaptive serving through a `Prepared`'s persistent session replays
/// bit-identically across session reuse, budget on and off.
#[test]
fn adaptive_serving_session_reuse_is_invisible() {
    let iters = ReflectivityDataset::tiny(8, 42)
        .unwrap()
        .sample_iterations(3);
    let prepared = Prepared::from_dataset(
        ReflectivityDataset::tiny(8, 42).unwrap(),
        iters.clone(),
        ExecPolicy::Serial,
        NetModel::blue_waters(),
    );
    for budget in [None, Some(0.01)] {
        let sink = FrameSink::new(Arc::new(MemStore::new()), "reuse-adaptive", CodecKind::Fpz);
        let params = StagedParams::new(2, 2, BackpressurePolicy::Block)
            .with_sim_compute(5.0)
            .with_persist(sink);
        let config = PipelineConfig::default()
            .with_fixed_percent(40.0)
            .with_staged(params);
        let serve = match budget {
            Some(b) => adaptive_serve(ServePolicy::BestEffort, Some(b)),
            None => adaptive_serve(ServePolicy::BestEffort, None),
        };
        let serve = ServeParams {
            requests_per_client: 5,
            ..serve
        };
        let first = prepared.run_staged_serving(config.clone(), &iters, &serve);
        let second = prepared.run_staged_serving(config, &iters, &serve);
        assert_serving_bit_identical(&first, &second, "adaptive session reuse");
        if budget.is_some() {
            assert!(first.degraded_replies() > 0, "tight budget must degrade");
        }
    }
}

/// Under pressure (no solver compute, depth-1 queues) the policies
/// diverge exactly as designed: Block stalls and loses nothing,
/// DropOldest sheds frames and never stalls — deterministically.
#[test]
fn policies_respond_to_pressure_as_specified() {
    let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
    let iters = dataset.sample_iterations(5);
    let run = |policy| {
        let params = StagedParams::new(1, 1, policy);
        run_staged_prepared(
            dataset.decomp(),
            dataset.coords(),
            &PipelineConfig::default()
                .deterministic()
                .with_fixed_percent(20.0)
                .with_staged(params),
            &iters,
            NetModel::blue_waters(),
            |it, rank| dataset.rank_blocks(it, rank),
        )
    };
    let block = run(BackpressurePolicy::Block);
    assert!(
        block.mean_sim_stall() > 0.0,
        "back-to-back frames must stall under Block"
    );
    assert_eq!(block.total_dropped(), 0);

    let lossy = run(BackpressurePolicy::DropOldest);
    assert_eq!(
        lossy.mean_sim_stall(),
        0.0,
        "DropOldest never stalls the sim"
    );
    assert!(lossy.total_dropped() > 0, "pressure must shed frames");
    // Shedding frames loses geometry relative to the lossless run.
    let block_tris: usize = block.frames.iter().map(|f| f.report.triangles_total).sum();
    let lossy_tris: usize = lossy.frames.iter().map(|f| f.report.triangles_total).sum();
    assert!(
        lossy_tris < block_tris,
        "dropped slices must cost triangles"
    );
}

//! Cross-crate integration: the substrates agree with each other where
//! their responsibilities overlap.

use insitu::cm1::{ReflectivityDataset, DBZ_ISOVALUE, DBZ_MAX, DBZ_MIN};
use insitu::compress::{FloatCodec, Fpz};
use insitu::grid::{interp, Block};
use insitu::metrics::{by_name, BlockScorer, CompressionScore};
use insitu::render::{block_isosurface, Colormap, RenderCostModel};

#[test]
fn fpzip_metric_equals_codec_ratio() {
    let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
    let block = &dataset.rank_blocks(300, 1)[5];
    let metric = CompressionScore::fpzip();
    let dims = block.dims();
    let score = metric.score(&block.samples(), dims);
    let ratio = Fpz.compressed_ratio(&block.samples(), (dims.nx, dims.ny, dims.nz));
    assert!((score - ratio).abs() < 1e-12);
}

#[test]
fn trilin_metric_predicts_reduction_error() {
    // A block scoring ~0 under TRILIN renders (almost) the same surface
    // after reduction — the metric's design property.
    let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
    let trilin = by_name("TRILIN").unwrap();
    let coords = dataset.coords();
    for rank in 0..4 {
        for block in dataset.rank_blocks(300, rank) {
            let score = trilin.score(&block.samples(), block.dims());
            if score < 1e-6 {
                let (full, _) = block_isosurface(&block, coords, DBZ_ISOVALUE);
                let (red, _) = block_isosurface(&block.reduced(), coords, DBZ_ISOVALUE);
                // A flat block is either entirely transparent before and
                // after, or keeps its (tiny) surface.
                assert!(
                    full.triangle_count() <= 12 || red.triangle_count() > 0,
                    "block {} lost its surface despite TRILIN score {score}",
                    block.id
                );
            }
        }
    }
}

#[test]
fn storm_blocks_score_higher_than_clear_air_under_every_metric() {
    let dataset = ReflectivityDataset::tiny(16, 42).unwrap();
    let it = dataset.sample_iterations(5)[2];
    // Find the block under the storm center and a far-corner block.
    let storm = dataset.storm();
    let c = storm.center(storm.tau(it));
    let gb = dataset.decomp().global_block_grid();
    let storm_id = dataset.decomp().block_id_at((
        ((c[0] * gb.nx as f32) as usize).min(gb.nx - 1),
        ((c[1] * gb.ny as f32) as usize).min(gb.ny - 1),
        0,
    ));
    // The far *bottom* corner: genuinely clear air. (Top-layer corners can
    // catch the anvil fringe spreading aloft — by design of the storm.)
    let corner_id = dataset.decomp().block_id_at((gb.nx - 1, 0, 0));
    let storm_block = dataset.block(it, storm_id);
    let corner_block = dataset.block(it, corner_id);
    for name in ["RANGE", "VAR", "ITL", "LEA", "FPZIP", "TRILIN", "ZFP", "LZ"] {
        let m = by_name(name).unwrap();
        let s_storm = m.score(&storm_block.samples(), storm_block.dims());
        let s_corner = m.score(&corner_block.samples(), corner_block.dims());
        assert!(
            s_storm > s_corner,
            "{name}: storm block {s_storm} should outscore clear air {s_corner}"
        );
    }
}

#[test]
fn reflectivity_fields_are_renderable_end_to_end() {
    let dataset = ReflectivityDataset::tiny(4, 7).unwrap();
    let field = dataset.field(400);
    let (lo, hi) = field.min_max().unwrap();
    assert!(lo >= DBZ_MIN && hi <= DBZ_MAX);
    // Colormap slice and isosurface both consume the same field.
    let img = Colormap::reflectivity().render_column_max(&field);
    assert_eq!(img.width(), field.dims().nx);
    let coords = dataset.coords();
    let (mesh, stats) = insitu::render::marching_tetrahedra(
        field.as_slice(),
        field.dims(),
        DBZ_ISOVALUE,
        |i, j, k| coords.position(i, j, k),
    );
    assert!(stats.triangles > 0);
    let (mlo, mhi) = mesh.bounds().unwrap();
    let (blo, bhi) = coords.bounds();
    assert!(mlo.x >= blo[0] && mhi.x <= bhi[0]);
    assert!(mlo.z >= blo[2] && mhi.z <= bhi[2]);
}

#[test]
fn block_transport_roundtrip_through_comm_layer() {
    use insitu::comm::{NetModel, Runtime, Tag};
    let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
    let blocks = dataset.rank_blocks(300, 2);
    let sent = blocks.clone();
    let out = Runtime::new(2, NetModel::blue_waters()).run(move |rank| {
        if rank.rank() == 0 {
            for b in &sent {
                rank.send(1, Tag(1), b.encode());
            }
            Vec::new()
        } else {
            (0..sent.len())
                .map(|_| Block::decode(&rank.recv::<Vec<f32>>(0, Tag(1))).unwrap())
                .collect()
        }
    });
    assert_eq!(out[1], blocks);
}

#[test]
fn corner_reconstruction_matches_renderer_interpolation() {
    // grid::interp and the reduced-block renderer must agree on corners.
    let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
    let block = dataset.rank_blocks(300, 1)[7].clone();
    let reduced = block.reduced();
    let corners = reduced.corners();
    let rec = interp::reconstruct_from_corners(&corners, block.dims());
    assert_eq!(&rec[..], &reduced.samples()[..]);
}

#[test]
fn cost_model_orders_reduced_below_full() {
    let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
    let coords = dataset.coords();
    let model = RenderCostModel::default().deterministic();
    let blocks = dataset.rank_blocks(300, 1);
    let mut full = insitu::render::IsoStats::default();
    let mut red = insitu::render::IsoStats::default();
    for b in &blocks {
        full.merge(block_isosurface(b, coords, DBZ_ISOVALUE).1);
        red.merge(block_isosurface(&b.reduced(), coords, DBZ_ISOVALUE).1);
    }
    let t_full = model.render_time(full, blocks.len(), 0);
    let t_red = model.render_time(red, blocks.len(), 0);
    assert!(t_red < t_full);
}

//! Acceptance guards for the frame-serving layer: frames persisted by
//! staged runs replay **byte-identically** through every lossless codec,
//! through disk and memory backends, through the serve path, and through
//! one-shot vs in-session execution — and damaged frame files surface as
//! errors, never as panics.

use std::sync::Arc;

use insitu::cm1::ReflectivityDataset;
use insitu::comm::NetModel;
use insitu::pipeline::{
    run_staged_prepared, run_staged_serving_prepared, BackpressurePolicy, ExecPolicy, FrameSink,
    FrameStore, PipelineConfig, Prepared, ServeParams, ServePolicy, StagedParams,
};
use insitu::serve::{store::frame_key, ServeError};
use insitu::store::{CodecKind, DirStore, MemStore, StoreBackend};

const VIZ: usize = 2;

fn staged_config(sink: FrameSink) -> PipelineConfig {
    let params = StagedParams::new(VIZ, 2, BackpressurePolicy::Block)
        .with_sim_compute(5.0)
        .with_persist(sink);
    PipelineConfig::default()
        .deterministic()
        .with_fixed_percent(40.0)
        .with_staged(params)
}

/// Run the tiny staged workload persisting into `backend`, and return the
/// iterations it rendered.
fn persist_run(backend: Arc<dyn StoreBackend>, run_id: &str, codec: CodecKind) -> Vec<usize> {
    let dataset = ReflectivityDataset::tiny(8, 42).unwrap();
    let iters = dataset.sample_iterations(3);
    let sink = FrameSink::new(backend, run_id, codec);
    let _ = run_staged_prepared(
        dataset.decomp(),
        dataset.coords(),
        &staged_config(sink),
        &iters,
        NetModel::blue_waters(),
        |it, rank| dataset.rank_blocks(it, rank),
    );
    iters
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("apc_frame_serving_tests")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Frames written through every lossless codec decode to bit-identical
/// pixels, and disk (`DirStore`) holds byte-identical streams to memory
/// (`MemStore`).
#[test]
fn lossless_codecs_replay_frames_byte_identically() {
    let mut reference: Option<Vec<Vec<u32>>> = None; // pixel bits per frame
    for codec in [CodecKind::Raw, CodecKind::Fpz, CodecKind::Lz] {
        let mem: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
        let dir_root = tmp_dir(&format!("codec_{}", codec.name()));
        let dir: Arc<dyn StoreBackend> = Arc::new(DirStore::create(&dir_root).unwrap());
        let iters = persist_run(Arc::clone(&mem), "run", codec);
        persist_run(Arc::clone(&dir), "run", codec);

        let mem_store = FrameStore::new(&*mem, "run");
        let dir_store = FrameStore::new(&*dir, "run");
        let mut bits = Vec::new();
        for &it in &iters {
            for stager in 0..VIZ as u32 {
                let a = mem_store.encoded(it as u64, stager).unwrap();
                let b = dir_store.encoded(it as u64, stager).unwrap();
                assert_eq!(a, b, "{}: disk and memory streams differ", codec.name());
                let frame = mem_store.get_frame(it as u64, stager).unwrap();
                bits.push(
                    frame
                        .pixels
                        .iter()
                        .map(|p| p.to_bits())
                        .collect::<Vec<u32>>(),
                );
            }
        }
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(
                r,
                &bits,
                "{}: lossless codecs must agree bit for bit",
                codec.name()
            ),
        }
    }
}

/// The serve path ships exactly the persisted bytes: how hard the
/// stagers are queried — which policy, which cache size — must not
/// perturb the frames they persist. (Every served frame is additionally
/// decoded and key-checked inside the client program itself.)
#[test]
fn serve_path_ships_the_persisted_bytes() {
    let dataset = ReflectivityDataset::tiny(8, 42).unwrap();
    let iters = dataset.sample_iterations(3);
    let run_with = |serve: &ServeParams| {
        let backend: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
        let sink = FrameSink::new(Arc::clone(&backend), "run", CodecKind::Fpz);
        let run = run_staged_serving_prepared(
            dataset.decomp(),
            dataset.coords(),
            &staged_config(sink),
            &iters,
            serve,
            NetModel::blue_waters(),
            |it, rank| dataset.rank_blocks(it, rank),
        );
        (run, backend)
    };
    let (wait, store_a) =
        run_with(&ServeParams::new(4, 8, ServePolicy::WaitForFrame).with_think_time(0.1));
    let (best, store_b) = run_with(
        &ServeParams::new(4, 8, ServePolicy::BestEffort)
            .with_think_time(0.1)
            .with_cache_bytes(0),
    );
    assert_eq!(wait.requests.len(), 4 * 8);
    assert!(wait.frames_served() > 0 && best.frames_served() > 0);

    for &it in &iters {
        for stager in 0..VIZ as u32 {
            let a = store_a.get(&frame_key("run", it as u64, stager)).unwrap();
            let b = store_b.get(&frame_key("run", it as u64, stager)).unwrap();
            assert_eq!(
                a, b,
                "serve policy and cache size must not perturb persisted frames"
            );
        }
    }
    // The staged pipeline observables agree too: serving load shapes
    // service latency, not what was rendered.
    let tri = |r: &insitu::pipeline::ServingRun| {
        r.staged
            .frames
            .iter()
            .map(|f| f.report.triangles_total)
            .collect::<Vec<usize>>()
    };
    assert_eq!(tri(&wait), tri(&best));
    // The serving store additionally carries the run manifest.
    let manifest = FrameStore::new(&*store_a, "run").manifest().unwrap();
    assert_eq!(manifest.iterations, iters);
    assert_eq!(manifest.n_stagers, VIZ);
}

/// PR 8 acceptance pin: serving with the byte-bounded frame cache on vs
/// off. What is *served and persisted* must be identical bytes — staged
/// reports, frame streams on the backend, request traffic — while the
/// virtual read charges are cache-aware (hit = zero charge, miss = the
/// ranged read), so the uncached run's tail latency can only be equal or
/// worse. Each configuration additionally replays **byte-identically**
/// (reports, latencies, and frame bytes) against a rerun of itself.
#[test]
fn cache_on_vs_off_serving_is_pinned() {
    let dataset = ReflectivityDataset::tiny(8, 42).unwrap();
    let iters = dataset.sample_iterations(3);
    let run_with = |cache_bytes: usize| {
        let backend: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
        let sink = FrameSink::new(Arc::clone(&backend), "run", CodecKind::Fpz);
        let serve = ServeParams::new(4, 8, ServePolicy::BestEffort)
            .with_think_time(0.1)
            .with_cache_bytes(cache_bytes);
        let run = run_staged_serving_prepared(
            dataset.decomp(),
            dataset.coords(),
            &staged_config(sink),
            &iters,
            &serve,
            NetModel::blue_waters(),
            |it, rank| dataset.rank_blocks(it, rank),
        );
        (run, backend)
    };

    let (cached, cached_store) = run_with(1 << 20);
    let (cached2, _) = run_with(1 << 20);
    let (uncached, uncached_store) = run_with(0);
    let (uncached2, _) = run_with(0);

    // Replay determinism per configuration: the whole run — reports,
    // per-request latencies, served frame bytes — is byte-identical.
    assert_eq!(cached, cached2, "cache-on run must replay identically");
    assert_eq!(uncached, uncached2, "cache-off run must replay identically");

    // Across configurations, the rendered and persisted frames agree.
    for &it in &iters {
        for stager in 0..VIZ as u32 {
            assert_eq!(
                cached_store
                    .get(&frame_key("run", it as u64, stager))
                    .unwrap(),
                uncached_store
                    .get(&frame_key("run", it as u64, stager))
                    .unwrap(),
                "the cache must not perturb persisted frames"
            );
        }
    }
    let reports = |r: &insitu::pipeline::ServingRun| {
        r.staged.frames.iter().map(|f| f.report).collect::<Vec<_>>()
    };
    assert_eq!(reports(&cached), reports(&uncached));
    assert_eq!(cached.frames_served(), uncached.frames_served());
    assert_eq!(cached.requests.len(), uncached.requests.len());

    // The cache is purely a virtual-latency lever.
    assert!(cached.cache_hit_rate() > 0.0);
    assert_eq!(uncached.cache_hit_rate(), 0.0);
    assert!(
        uncached.latency_percentile(99.0) >= cached.latency_percentile(99.0) - 1e-12,
        "cache misses must not improve tail latency"
    );
}

/// One-shot serving (fresh runtime) and in-session serving (a `Prepared`'s
/// persistent ranks, replayed twice) produce identical runs and identical
/// stored bytes.
#[test]
fn one_shot_and_in_session_serving_replay_identically() {
    let dataset = ReflectivityDataset::tiny(8, 42).unwrap();
    let iters = dataset.sample_iterations(3);
    let serve = ServeParams::new(3, 6, ServePolicy::WaitForFrame).with_think_time(0.1);

    let backend_a: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
    let one_shot = run_staged_serving_prepared(
        dataset.decomp(),
        dataset.coords(),
        &staged_config(FrameSink::new(
            Arc::clone(&backend_a),
            "run",
            CodecKind::Fpz,
        )),
        &iters,
        &serve,
        NetModel::blue_waters(),
        |it, rank| dataset.rank_blocks(it, rank),
    );

    let prepared = Prepared::from_dataset(
        ReflectivityDataset::tiny(8, 42).unwrap(),
        iters.clone(),
        ExecPolicy::Serial,
        NetModel::blue_waters(),
    );
    let backend_b: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
    let config = staged_config(FrameSink::new(
        Arc::clone(&backend_b),
        "run",
        CodecKind::Fpz,
    ));
    let first = prepared.run_staged_serving(config.clone(), &iters, &serve);
    let second = prepared.run_staged_serving(config, &iters, &serve);

    assert_eq!(one_shot, first, "one-shot vs session serving diverged");
    assert_eq!(first, second, "session replay diverged");
    for &it in &iters {
        for stager in 0..VIZ as u32 {
            assert_eq!(
                backend_a.get(&frame_key("run", it as u64, stager)).unwrap(),
                backend_b.get(&frame_key("run", it as u64, stager)).unwrap(),
                "stored frames must be byte-identical across execution styles"
            );
        }
    }
}

/// Damaged frame files on disk surface as `Corrupt` (or a store error),
/// never as a panic — the serve-layer mirror of
/// `compress/tests/adversarial.rs`.
#[test]
fn damaged_frame_files_are_corrupt_not_panics() {
    let dir_root = tmp_dir("damage");
    let backend: Arc<dyn StoreBackend> = Arc::new(DirStore::create(&dir_root).unwrap());
    let iters = persist_run(Arc::clone(&backend), "run", CodecKind::Fpz);
    let store = FrameStore::new(&*backend, "run");
    let it = iters[0] as u64;

    let full = store.encoded(it, 0).unwrap();
    // Truncation at a sweep of prefix lengths.
    for len in [0, 1, 8, full.len() / 2, full.len() - 1] {
        backend.put(&frame_key("run", it, 0), &full[..len]).unwrap();
        assert!(
            matches!(store.get_frame(it, 0), Err(ServeError::Corrupt(_))),
            "truncation to {len} bytes must be Corrupt"
        );
    }
    // Single-bit flips across the stream: decode returns (any) Result.
    for pos in 0..full.len() {
        let mut bad = full.clone();
        bad[pos] ^= 0x10;
        backend.put(&frame_key("run", it, 0), &bad).unwrap();
        let _ = store.get_frame(it, 0); // must not unwind
    }
    // Restore and confirm the store still replays cleanly.
    backend.put(&frame_key("run", it, 0), &full).unwrap();
    assert_eq!(store.get_frame(it, 0).unwrap().iteration, it);
}

//! The store round-trip acceptance test: a dataset written with
//! `apc_cm1::write_dataset` and reopened through `Prepared::from_store`
//! must produce `IterationReport`s **byte-identical** to the in-memory
//! path, for every lossless codec and for both backends (disk and
//! memory), across the one-shot driver and the sweep engine.

use insitu::cm1::{self, ReflectivityDataset, StoredTimeSeries};
use insitu::comm::NetModel;
use insitu::pipeline::{
    run_experiment, ExecPolicy, IterationReport, PipelineConfig, Prepared, Redistribution,
};
use insitu::store::{CodecKind, MemStore, StoreBackend};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("apc_store_roundtrip_tests")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn configs() -> Vec<PipelineConfig> {
    vec![
        PipelineConfig::default().with_fixed_percent(0.0),
        PipelineConfig::default().with_fixed_percent(70.0),
        PipelineConfig::default()
            .with_metric("LEA")
            .with_redistribution(Redistribution::RoundRobin)
            .with_fixed_percent(50.0),
        PipelineConfig::default().with_target(5.0),
    ]
}

/// The reference: the plain in-memory experiment driver.
fn in_memory_reports(dataset: &ReflectivityDataset, iters: &[usize]) -> Vec<Vec<IterationReport>> {
    configs()
        .into_iter()
        .map(|c| run_experiment(dataset, c, iters))
        .collect()
}

#[test]
fn disk_store_replay_is_byte_identical_to_in_memory() {
    let dataset = ReflectivityDataset::tiny(4, 21).unwrap();
    let iters = dataset.sample_iterations(3);
    let expected = in_memory_reports(&dataset, &iters);

    let dir = tmp_dir("disk");
    cm1::write_dataset(&dataset, &iters, &dir, CodecKind::Fpz).unwrap();
    let prepared = Prepared::from_store(
        cm1::open_dataset(&dir).unwrap(),
        ExecPolicy::Serial,
        NetModel::blue_waters(),
    );
    assert_eq!(prepared.iterations, iters);

    // One-shot runs through the store-backed session.
    for (config, want) in configs().into_iter().zip(&expected) {
        assert_eq!(&prepared.run(config, &iters), want, "store replay diverged");
    }
    // And the whole set again as a single sweep over the same session.
    let swept = prepared.run_sweep(&configs(), &iters);
    assert_eq!(swept, expected, "sweep over the store diverged");
}

#[test]
fn every_lossless_codec_replays_identically_from_memory_backend() {
    let dataset = ReflectivityDataset::tiny(4, 33).unwrap();
    let iters = dataset.sample_iterations(2);
    let config = PipelineConfig::default()
        .with_redistribution(Redistribution::RandomShuffle { seed: 5 })
        .with_fixed_percent(60.0);
    let expected = run_experiment(&dataset, config.clone(), &iters);

    for codec in [CodecKind::Raw, CodecKind::Fpz, CodecKind::Lz] {
        let backend: Box<dyn StoreBackend> = Box::new(MemStore::new());
        cm1::write_dataset_to(&dataset, &iters, &backend, codec).unwrap();
        let stored = StoredTimeSeries::from_backend(backend).unwrap();
        let prepared = Prepared::from_store(stored, ExecPolicy::Serial, NetModel::blue_waters());
        assert_eq!(
            prepared.run(config.clone(), &iters),
            expected,
            "codec {} diverged",
            codec.name()
        );
    }
}

#[test]
fn store_replay_is_deterministic_across_reopenings() {
    // Two independent openings of the same directory must agree with each
    // other (fresh sessions, fresh caches — nothing run-order dependent).
    let dataset = ReflectivityDataset::tiny(4, 8).unwrap();
    let iters = dataset.sample_iterations(2);
    let dir = tmp_dir("reopen");
    cm1::write_dataset(&dataset, &iters, &dir, CodecKind::Lz).unwrap();

    let run_once = || {
        let prepared = Prepared::from_store(
            cm1::open_dataset(&dir).unwrap(),
            ExecPolicy::Serial,
            NetModel::blue_waters(),
        );
        prepared.run(PipelineConfig::default().with_fixed_percent(40.0), &iters)
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn store_geometry_twin_matches_the_writer() {
    let dataset = ReflectivityDataset::tiny(16, 77).unwrap();
    let iters = [300usize];
    let dir = tmp_dir("geometry");
    cm1::write_dataset(&dataset, &iters, &dir, CodecKind::Raw).unwrap();
    let stored = cm1::open_dataset(&dir).unwrap();
    assert_eq!(stored.decomp(), dataset.decomp());
    assert_eq!(stored.coords(), dataset.coords());
    assert_eq!(stored.seed(), 77);
    // The blocks a rank reads are the blocks the simulation produced.
    for rank in [0usize, 7, 15] {
        assert_eq!(
            stored.rank_blocks(300, rank).unwrap(),
            dataset.rank_blocks(300, rank)
        );
    }
}

//! Regression guard for the execution layer's core invariant: the
//! intra-rank [`ExecPolicy`] changes *wall-clock* time only. Virtual-time
//! accounting is summed from per-block counters (never measured), so
//! `Serial` and `Threads(8)` must produce identical [`IterationReport`]
//! streams — bit-for-bit, including every step time and triangle count —
//! for any dataset and metric.
//!
//! The runs go through the [`Pipeline`] directly rather than the
//! experiment driver, because the driver clamps the policy to the host's
//! core budget: on a small CI machine that would silently turn
//! `Threads(8)` back into `Serial` and the test would guard nothing.

use insitu::cm1::ReflectivityDataset;
use insitu::comm::{NetModel, Runtime};
use insitu::pipeline::{ExecPolicy, IterationReport, Pipeline, PipelineConfig, Redistribution};

/// Run `config` on `dataset` across its rank count, asserting all ranks
/// agree, and return rank 0's reports.
fn run(
    dataset: &ReflectivityDataset,
    config: &PipelineConfig,
    iters: &[usize],
) -> Vec<IterationReport> {
    let nranks = dataset.decomp().nranks();
    let all: Vec<Vec<IterationReport>> =
        Runtime::new(nranks, NetModel::blue_waters()).run(|rank| {
            let mut p = Pipeline::new(config.clone(), *dataset.decomp(), dataset.coords().clone());
            iters
                .iter()
                .map(|&it| {
                    p.run_iteration(rank, dataset.rank_blocks(it, rank.rank()), it)
                        .0
                })
                .collect()
        });
    for r in 1..all.len() {
        assert_eq!(all[0], all[r], "rank {r} disagrees");
    }
    all.into_iter().next().unwrap()
}

fn assert_policies_agree(config: PipelineConfig, dataset: &ReflectivityDataset, iters: &[usize]) {
    let serial = run(
        dataset,
        &config.clone().with_exec(ExecPolicy::Serial),
        iters,
    );
    let threads = run(dataset, &config.with_exec(ExecPolicy::Threads(8)), iters);
    assert_eq!(serial.len(), threads.len());
    for (s, t) in serial.iter().zip(&threads) {
        // PartialEq covers every field; compare the whole struct first for
        // a readable failure, then pin the float fields bit-for-bit.
        assert_eq!(s, t, "reports diverged at iteration {}", s.iteration);
        for (a, b) in [
            (s.t_score, t.t_score),
            (s.t_sort, t.t_sort),
            (s.t_reduce, t.t_reduce),
            (s.t_redistribute, t.t_redistribute),
            (s.t_render, t.t_render),
            (s.t_total, t.t_total),
        ] {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "virtual time drifted at iteration {}",
                s.iteration
            );
        }
    }
}

/// 2 datasets × 2 metrics, as the execution-layer issue specifies: a cheap
/// statistics metric and the expensive compressor probe, each on two
/// different storms.
#[test]
fn serial_and_threads_reports_are_identical() {
    for seed in [42, 7] {
        let dataset = ReflectivityDataset::tiny(4, seed).unwrap();
        let iters = dataset.sample_iterations(2);
        for metric in ["VAR", "FPZIP"] {
            let config = PipelineConfig::default()
                .deterministic()
                .with_metric(metric)
                .with_fixed_percent(40.0);
            assert_policies_agree(config, &dataset, &iters);
        }
    }
}

/// The invariant also holds with every pipeline stage active (adaptation,
/// redistribution, render jitter) — jitter is seeded from counted work,
/// not from scheduling.
#[test]
fn full_pipeline_with_jitter_and_redistribution_agrees() {
    let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
    let iters = dataset.sample_iterations(3);
    let config = PipelineConfig::default()
        .with_redistribution(Redistribution::RoundRobin)
        .with_target(3.0);
    assert_policies_agree(config, &dataset, &iters);
}

/// Session-reuse determinism: the same config run twice over one
/// persistent rank session, and once through the one-shot `Runtime::run`,
/// must produce identical `IterationReport`s — the session's epoch
/// isolation and per-run clock reset make reuse observationally invisible.
#[test]
fn session_reuse_matches_one_shot_run() {
    let dataset = ReflectivityDataset::tiny(4, 42).unwrap();
    let iters = dataset.sample_iterations(2);
    let config = PipelineConfig::default()
        .with_redistribution(Redistribution::RoundRobin)
        .with_target(3.0)
        .with_exec(ExecPolicy::Threads(2));
    let nranks = dataset.decomp().nranks();
    let runtime = Runtime::new(nranks, NetModel::blue_waters());

    let job = |rank: &mut insitu::comm::Rank| -> Vec<IterationReport> {
        let mut p = Pipeline::new(config.clone(), *dataset.decomp(), dataset.coords().clone());
        iters
            .iter()
            .map(|&it| {
                p.run_iteration(rank, dataset.rank_blocks(it, rank.rank()), it)
                    .0
            })
            .collect()
    };

    let one_shot = runtime.run(job);
    let mut session = runtime.session();
    let first = session.run(job);
    let second = session.run(job);

    for (label, run) in [
        ("first session run", &first),
        ("second session run", &second),
    ] {
        assert_eq!(run, &one_shot, "{label} diverged from the one-shot run");
        for (s, t) in run[0].iter().zip(&one_shot[0]) {
            for (a, b) in [
                (s.t_score, t.t_score),
                (s.t_sort, t.t_sort),
                (s.t_reduce, t.t_reduce),
                (s.t_redistribute, t.t_redistribute),
                (s.t_render, t.t_render),
                (s.t_total, t.t_total),
            ] {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{label}: virtual time drifted at iteration {}",
                    s.iteration
                );
            }
        }
    }
}

/// Oversubscription stress: more workers than blocks or cores must not
/// change results either.
#[test]
fn absurd_thread_counts_are_safe() {
    let dataset = ReflectivityDataset::tiny(2, 11).unwrap();
    let iters = [dataset.sample_iterations(1)[0]];
    let base = PipelineConfig::default().deterministic();
    let serial = run(
        &dataset,
        &base.clone().with_exec(ExecPolicy::Serial),
        &iters,
    );
    let wide = run(&dataset, &base.with_exec(ExecPolicy::Threads(64)), &iters);
    assert_eq!(serial, wide);
}

//! Property-based tests of cross-crate invariants.

use insitu::grid::{interp, Dims3};
use insitu::metrics::{by_name, ranks_by_score};
use insitu::pipeline::adapt_percent;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Algorithm 1 always returns a percentage in [0, 100], whatever the
    /// observations.
    #[test]
    fn adapt_percent_stays_in_range(
        target in 0.001f64..1e4,
        t_prev in 0.0f64..1e4,
        p_prev in 0.0f64..100.0,
        t_cur in 0.0f64..1e4,
        p_cur in 0.0f64..100.0,
    ) {
        let p = adapt_percent(target, t_prev, p_prev, t_cur, p_cur);
        prop_assert!((0.0..=100.0).contains(&p), "p = {p}");
    }

    /// On an exactly linear monotone response, two observations put the
    /// controller on target (up to clamping).
    #[test]
    fn adapt_percent_solves_linear_systems(
        a in -10.0f64..-0.01,
        b in 10.0f64..1000.0,
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
        target_frac in 0.05f64..0.95,
    ) {
        prop_assume!((p1 - p2).abs() > 1.0);
        let t = |p: f64| a * p + b;
        // Pick a target inside the achievable band.
        let (lo, hi) = (t(100.0), t(0.0));
        let target = lo + target_frac * (hi - lo);
        prop_assume!(target > 0.0);
        let p_next = adapt_percent(target, t(p1), p1, t(p2), p2);
        prop_assert!((t(p_next) - target).abs() < 1e-6,
            "t(p_next) = {} vs target {target}", t(p_next));
    }

    /// Rank vectors are permutations of 0..n.
    #[test]
    fn ranks_are_a_permutation(scores in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
        let ranks = ranks_by_score(&scores);
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..scores.len()).collect::<Vec<_>>());
    }

    /// Trilinear reconstruction reproduces the corner values exactly and
    /// never exceeds the corners' range (barycentric combination).
    #[test]
    fn reconstruction_bounded_by_corners(
        corners in proptest::array::uniform8(-1e3f32..1e3),
        nx in 2usize..6, ny in 2usize..6, nz in 2usize..6,
    ) {
        let dims = Dims3::new(nx, ny, nz);
        let rec = interp::reconstruct_from_corners(&corners, dims);
        let lo = corners.iter().cloned().fold(f32::MAX, f32::min);
        let hi = corners.iter().cloned().fold(f32::MIN, f32::max);
        for v in &rec {
            prop_assert!(*v >= lo - 1e-2 && *v <= hi + 1e-2, "{v} outside [{lo}, {hi}]");
        }
        // Corners exact.
        let c = interp::corners_of(&rec, dims);
        for (got, want) in c.iter().zip(&corners) {
            prop_assert!((got - want).abs() < 1e-3);
        }
    }

    /// Every metric gives a flat block a score no higher than the same
    /// block plus structured variation.
    #[test]
    fn metrics_respond_to_information(amp in 0.5f32..50.0, base in -50.0f32..50.0) {
        let dims = Dims3::new(6, 6, 6);
        let flat = vec![base; dims.len()];
        let varied: Vec<f32> = (0..dims.len())
            .map(|i| base + amp * ((i as f32 * 0.7).sin()))
            .collect();
        for name in ["RANGE", "VAR", "ITL", "LEA", "TRILIN", "FPZIP", "LZ", "ZFP"] {
            let m = by_name(name).unwrap();
            let s_flat = m.score(&flat, dims);
            let s_varied = m.score(&varied, dims);
            prop_assert!(s_flat <= s_varied + 1e-9,
                "{name}: flat {s_flat} > varied {s_varied}");
        }
    }

    /// The score order contract: sorting twice is stable and deterministic.
    #[test]
    fn score_order_is_total(ids in proptest::collection::vec(0u32..1000, 2..50)) {
        use insitu::pipeline::ScoredBlock;
        let mut blocks: Vec<ScoredBlock> = ids
            .iter()
            .map(|&id| ScoredBlock { id, score: (id % 7) as f64 })
            .collect();
        let cmp = |a: &ScoredBlock, b: &ScoredBlock| {
            a.score.partial_cmp(&b.score).unwrap().then(a.id.cmp(&b.id))
        };
        blocks.sort_by(cmp);
        let once = blocks.clone();
        blocks.sort_by(cmp);
        prop_assert_eq!(once, blocks);
    }
}

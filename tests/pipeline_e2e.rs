//! End-to-end integration tests: dataset → scoring → sort → reduction →
//! redistribution → rendering → adaptation, across all workspace crates.

use insitu::cm1::ReflectivityDataset;
use insitu::pipeline::{
    run_experiment, run_experiment_on, IterationReport, PipelineConfig, Redistribution,
};

fn tiny(nranks: usize) -> ReflectivityDataset {
    ReflectivityDataset::tiny(nranks, 42).expect("tiny decomposition")
}

#[test]
fn experiments_are_bitwise_deterministic() {
    let dataset = tiny(16);
    let iters = dataset.sample_iterations(3);
    let cfg = PipelineConfig::default()
        .with_redistribution(Redistribution::RoundRobin)
        .with_target(3.0);
    let a = run_experiment(&dataset, cfg.clone(), &iters);
    let b = run_experiment(&dataset, cfg, &iters);
    assert_eq!(a, b, "same config + seed must reproduce exactly");
}

#[test]
fn different_seeds_give_different_storms() {
    let a = ReflectivityDataset::tiny(4, 1).unwrap();
    let b = ReflectivityDataset::tiny(4, 2).unwrap();
    let ra = run_experiment(&a, PipelineConfig::default().deterministic(), &[300]);
    let rb = run_experiment(&b, PipelineConfig::default().deterministic(), &[300]);
    assert_ne!(ra[0].triangles_total, rb[0].triangles_total);
}

#[test]
fn render_time_is_monotone_in_reduction_percentage() {
    // Paper assumption (1) behind Algorithm 1: pipeline time is monotone
    // (non-increasing) in the number of reduced blocks — exactly true with
    // the deterministic cost model.
    let dataset = tiny(16);
    let it = dataset.sample_iterations(5)[2];
    let mut prev = f64::INFINITY;
    for p in [0.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
        let r = run_experiment(
            &dataset,
            PipelineConfig::default()
                .deterministic()
                .with_fixed_percent(p),
            &[it],
        );
        assert!(
            r[0].t_render <= prev + 1e-9,
            "t_render({p}%) = {} must not exceed t_render at lower percentage {prev}",
            r[0].t_render
        );
        prev = r[0].t_render;
    }
}

#[test]
fn reduction_keeps_block_count_and_extents() {
    // The filtered data must still tile the domain (reduced blocks keep
    // their extents for continuity, paper §IV-C).
    let dataset = tiny(4);
    let it = 300;
    let mut total_points = 0usize;
    for rank in 0..4 {
        for mut b in dataset.rank_blocks(it, rank) {
            let ext = b.extent;
            b.reduce();
            assert_eq!(b.extent, ext, "reduction must preserve the extent");
            assert_eq!(
                b.samples().len(),
                ext.len(),
                "reconstruction fills the extent"
            );
            total_points += ext.len();
        }
    }
    assert_eq!(total_points, dataset.decomp().domain().len());
}

#[test]
fn redistribution_preserves_geometry_exactly() {
    // Shuffling blocks must never change WHAT is rendered, only WHERE.
    let dataset = tiny(16);
    let it = dataset.sample_iterations(5)[2];
    let mut totals = Vec::new();
    for strat in [
        Redistribution::None,
        Redistribution::RoundRobin,
        Redistribution::RandomShuffle { seed: 3 },
        Redistribution::RandomShuffle { seed: 99 },
    ] {
        let r = run_experiment(
            &dataset,
            PipelineConfig::default()
                .deterministic()
                .with_redistribution(strat),
            &[it],
        );
        totals.push(r[0].triangles_total);
    }
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "triangle totals differ: {totals:?}"
    );
}

#[test]
fn adaptive_run_reduces_more_when_target_is_tighter() {
    let dataset = tiny(16);
    let iters: Vec<usize> = dataset.sample_iterations(8);
    let loose = run_experiment(
        &dataset,
        PipelineConfig::default().deterministic().with_target(5.0),
        &iters,
    );
    let tight = run_experiment(
        &dataset,
        PipelineConfig::default().deterministic().with_target(1.5),
        &iters,
    );
    let avg = |rs: &[IterationReport]| {
        rs[2..].iter().map(|r| r.percent_reduced).sum::<f64>() / (rs.len() - 2) as f64
    };
    assert!(
        avg(&tight) > avg(&loose),
        "tighter budget must reduce more: {} vs {}",
        avg(&tight),
        avg(&loose)
    );
    let avg_t = |rs: &[IterationReport]| {
        rs[2..].iter().map(|r| r.t_total).sum::<f64>() / (rs.len() - 2) as f64
    };
    assert!(avg_t(&tight) < avg_t(&loose));
}

#[test]
fn metric_choice_does_not_change_unreduced_rendering() {
    // With 0% reduction and no redistribution, the metric only affects the
    // scoring step; rendering is identical.
    let dataset = tiny(4);
    let it = 300;
    let base = run_experiment(
        &dataset,
        PipelineConfig::default().deterministic().with_metric("VAR"),
        &[it],
    );
    for m in ["RANGE", "LEA", "ITL", "TRILIN", "FPZIP"] {
        let r = run_experiment(
            &dataset,
            PipelineConfig::default().deterministic().with_metric(m),
            &[it],
        );
        assert_eq!(r[0].triangles_total, base[0].triangles_total, "metric {m}");
        assert!(
            (r[0].t_render - base[0].t_render).abs() < 1e-9,
            "metric {m}"
        );
    }
}

#[test]
fn network_model_only_affects_communication_steps() {
    let dataset = tiny(4);
    let cfg = PipelineConfig::default()
        .deterministic()
        .with_redistribution(Redistribution::RandomShuffle { seed: 1 });
    let gemini = run_experiment_on(
        &dataset,
        cfg.clone(),
        &[300],
        insitu::comm::NetModel::blue_waters(),
    );
    let gige = run_experiment_on(
        &dataset,
        cfg,
        &[300],
        insitu::comm::NetModel::gigabit_ethernet(),
    );
    assert!(gige[0].t_redistribute > gemini[0].t_redistribute);
    assert_eq!(gige[0].triangles_total, gemini[0].triangles_total);
}

#[test]
fn per_step_times_sum_to_total() {
    let dataset = tiny(16);
    let r = run_experiment(
        &dataset,
        PipelineConfig::default()
            .deterministic()
            .with_redistribution(Redistribution::RoundRobin)
            .with_fixed_percent(40.0),
        &[300],
    )[0];
    let sum = r.t_score + r.t_sort + r.t_reduce + r.t_redistribute + r.t_render;
    assert!(
        (sum - r.t_total).abs() < 1e-6,
        "steps sum {sum} vs total {}",
        r.t_total
    );
}
